package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"kyrix/internal/fetch"
	"kyrix/internal/workload"
)

// Shared quick environments: building them once keeps the suite fast.
var (
	envOnce sync.Once
	envUni  *Env
	envSkew *Env
	envErr  error
)

func quickEnvs(t *testing.T) (*Env, *Env) {
	t.Helper()
	envOnce.Do(func() {
		envUni, envErr = NewEnv(QuickConfig(), "uniform")
		if envErr != nil {
			return
		}
		envSkew, envErr = NewEnv(QuickConfig(), "skewed")
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envUni, envSkew
}

func TestNewEnvValidates(t *testing.T) {
	if _, err := NewEnv(QuickConfig(), "zipf"); err == nil {
		t.Fatal("unknown dataset kind must fail")
	}
}

func TestRunSchemeBasics(t *testing.T) {
	env, _ := quickEnvs(t)
	traces := workload.PaperTraces(env.Dataset, 1024, env.Cfg.ViewportW, env.Cfg.ViewportH)
	s, err := env.RunScheme(fetch.DBoxExact, traces[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanMs <= 0 || s.RowsPerStep <= 0 {
		t.Fatalf("series = %+v", s)
	}
	// Exact dbox refetches every step on trace-a (steps are a full
	// viewport apart): exactly 1 request per step.
	if s.RequestsPerStep != 1 {
		t.Fatalf("dbox requests/step = %g", s.RequestsPerStep)
	}
	if s.OverBudget != 0 {
		t.Fatalf("local steps must stay under 500ms, got %d over", s.OverBudget)
	}
}

// The count-based halves of the paper's claims are deterministic: check
// them exactly.
func TestFetchVolumeInvariants(t *testing.T) {
	env, _ := quickEnvs(t)
	traces := workload.PaperTraces(env.Dataset, 1024, env.Cfg.ViewportW, env.Cfg.ViewportH)
	trB, trC := traces[1], traces[2]

	get := func(g fetch.Granularity, tr *workload.Trace) Series {
		s, err := env.RunScheme(g, tr)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	for _, tr := range []*workload.Trace{trB, trC} {
		dbox := get(fetch.DBoxExact, tr)
		t256 := get(fetch.TileSpatial256, tr)
		t1024 := get(fetch.TileSpatial1024, tr)
		t4096 := get(fetch.TileSpatial4096, tr)

		// (Fig. 4 reasoning 1) dbox fetches the least data.
		for _, other := range []Series{t256, t1024, t4096} {
			if dbox.RowsPerStep > other.RowsPerStep+1 {
				t.Errorf("%s: dbox rows/step %.1f > %s %.1f",
					tr.Name, dbox.RowsPerStep, other.Scheme, other.RowsPerStep)
			}
		}
		// (Fig. 4 reasoning 2) dbox issues fewer requests than small
		// tiles.
		if dbox.RequestsPerStep >= t256.RequestsPerStep {
			t.Errorf("%s: dbox req/step %.1f >= tile256 %.1f",
				tr.Name, dbox.RequestsPerStep, t256.RequestsPerStep)
		}
		// Big tiles pull the most rows per step on unaligned traces.
		if t4096.RowsPerStep < t1024.RowsPerStep {
			t.Errorf("%s: tile4096 rows %.1f < tile1024 rows %.1f",
				tr.Name, t4096.RowsPerStep, t1024.RowsPerStep)
		}
	}
}

func TestSkewedDenserThanUniform(t *testing.T) {
	uni, skew := quickEnvs(t)
	trU := workload.PaperTraces(uni.Dataset, 1024, uni.Cfg.ViewportW, uni.Cfg.ViewportH)[0]
	trS := workload.PaperTraces(skew.Dataset, 1024, skew.Cfg.ViewportW, skew.Cfg.ViewportH)[0]
	su, err := uni.RunScheme(fetch.DBoxExact, trU)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := skew.RunScheme(fetch.DBoxExact, trS)
	if err != nil {
		t.Fatal(err)
	}
	// Trace-a runs inside the dense region (4x density): the skewed
	// trace must pull substantially more rows per step.
	if ss.RowsPerStep < su.RowsPerStep*2 {
		t.Fatalf("skewed rows/step %.1f not ≫ uniform %.1f", ss.RowsPerStep, su.RowsPerStep)
	}
}

func TestFigureSchemesTable(t *testing.T) {
	env, _ := quickEnvs(t)
	tab, err := FigureSchemes(env, "Figure 6 (quick)")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 || len(tab.Cols) != 3 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	for _, r := range tab.Rows {
		for _, c := range tab.Cols {
			if math.IsNaN(tab.Get(r, c)) {
				t.Fatalf("missing cell %s/%s", r, c)
			}
			if _, ok := tab.Series(r, c); !ok {
				t.Fatalf("missing series %s/%s", r, c)
			}
		}
	}
	text := tab.Format()
	for _, want := range []string{"Figure 6 (quick)", "dbox", "tile mapping 4096", "trace-c"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, text)
		}
	}
}

func TestShapeReportRuns(t *testing.T) {
	// ShapeReport's verdicts are timing-dependent; here we only check
	// it evaluates all five claims on synthetic tables with known
	// outcomes.
	rows := SortedSchemeNames()
	cols := []string{"trace-a", "trace-b", "trace-c"}
	uni := NewTable("u", "ms", rows, cols)
	skew := NewTable("s", "ms", rows, cols)
	base := map[string]float64{
		"dbox": 1, "dbox 50%": 2.4,
		"tile spatial 1024": 1.8, "tile spatial 256": 8, "tile spatial 4096": 6,
		"tile mapping 1024": 2.2, "tile mapping 256": 9, "tile mapping 4096": 7,
	}
	for r, v := range base {
		for _, c := range cols {
			val := v
			if r == "tile spatial 1024" && c == "trace-a" {
				val = 1.1 // competitive on the aligned trace
			}
			uni.Set(r, c, val, Series{})
			skew.Set(r, c, val*3, Series{})
		}
	}
	report := ShapeReport(uni, skew)
	if len(report) != 5 {
		t.Fatalf("report lines = %d", len(report))
	}
	for _, line := range report {
		if !strings.HasPrefix(line, "[HOLDS]") {
			t.Fatalf("claim failed on known-good synthetic data: %s", line)
		}
	}
	// And violations are reported as such.
	uni.Set("dbox", "trace-a", 100, Series{})
	uni.Set("dbox", "trace-b", 100, Series{})
	uni.Set("dbox", "trace-c", 100, Series{})
	report = ShapeReport(uni, skew)
	violated := false
	for _, line := range report {
		if strings.HasPrefix(line, "[VIOLATED]") {
			violated = true
		}
	}
	if !violated {
		t.Fatal("expected a violated claim")
	}
}

func TestFigure4Diagnostics(t *testing.T) {
	env, _ := quickEnvs(t)
	tab, err := Figure4(env)
	if err != nil {
		t.Fatal(err)
	}
	// dbox issues exactly 1 request/step on trace-a.
	if got := tab.Get("dbox req/step", "trace-a"); got != 1 {
		t.Fatalf("dbox req/step = %g", got)
	}
	// tile 256 issues many more.
	if got := tab.Get("tile spatial 256 req/step", "trace-b"); got < 5 {
		t.Fatalf("tile256 req/step = %g", got)
	}
}

func TestFigure5Text(t *testing.T) {
	out, err := Figure5(QuickConfig(), "skewed")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace-a", "trace-b", "trace-c", "dense area", "step 12"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure5 missing %q:\n%s", want, out)
		}
	}
	if _, err := Figure5(QuickConfig(), "bogus"); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestAblationInflation(t *testing.T) {
	env, _ := quickEnvs(t)
	tab, err := AblationInflation(env)
	if err != nil {
		t.Fatal(err)
	}
	// Larger boxes fetch more rows but need fewer requests.
	r0 := tab.Get("inflate 0%", "rows/step")
	r200 := tab.Get("inflate 200%", "rows/step")
	q0 := tab.Get("inflate 0%", "req/step")
	q200 := tab.Get("inflate 200%", "req/step")
	if r200 <= r0 {
		t.Fatalf("rows: 200%% (%g) should exceed 0%% (%g)", r200, r0)
	}
	if q200 >= q0 {
		t.Fatalf("requests: 200%% (%g) should be below 0%% (%g)", q200, q0)
	}
}

func TestAblationCache(t *testing.T) {
	env, _ := quickEnvs(t)
	tab, err := AblationCache(env)
	if err != nil {
		t.Fatal(err)
	}
	// With the frontend cache, a revisit trace needs almost no
	// requests (only the first visit to the far location is cold);
	// without any cache every step refetches.
	withFE := tab.Get("both caches", "req/step")
	without := tab.Get("no caches", "req/step")
	if withFE >= without {
		t.Fatalf("req/step: both=%g nocache=%g", withFE, without)
	}
	if withFE >= 1 {
		t.Fatalf("revisit trace with frontend cache should need <1 req/step, got %g", withFE)
	}
}

func TestAblationPrefetch(t *testing.T) {
	env, _ := quickEnvs(t)
	tab, err := AblationPrefetch(env)
	if err != nil {
		t.Fatal(err)
	}
	// Constant-velocity: momentum prediction is perfect after warmup.
	hit := tab.Get("momentum / constant-v", "hit rate %")
	if hit < 80 {
		t.Fatalf("constant-velocity hit rate = %g%%", hit)
	}
	noHit := tab.Get("no prefetch / constant-v", "hit rate %")
	if noHit != 0 {
		t.Fatalf("no-prefetch hit rate = %g%%", noHit)
	}
	// Momentum must help more on constant velocity than random walk.
	rwHit := tab.Get("momentum / random-walk", "hit rate %")
	if rwHit > hit {
		t.Fatalf("random-walk hit %g%% > constant-v hit %g%%", rwHit, hit)
	}
}

func TestAblationSeparability(t *testing.T) {
	cfg := QuickConfig()
	cfg.NumPoints = 30_000
	tab, err := AblationSeparability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sep := tab.Get("separable (skip precompute)", "precompute time")
	full := tab.Get("non-separable (materialize)", "precompute time")
	if math.IsNaN(sep) || math.IsNaN(full) {
		t.Fatal("missing cells")
	}
	// The separable shortcut must be faster: it skips the table copy.
	if sep >= full {
		t.Fatalf("separable %.3fs >= materialize %.3fs", sep, full)
	}
}

func TestAblationCodec(t *testing.T) {
	env, _ := quickEnvs(t)
	tab, err := AblationCodec(env)
	if err != nil {
		t.Fatal(err)
	}
	jb := tab.Get("json", "bytes/step")
	bb := tab.Get("binary", "bytes/step")
	if bb >= jb {
		t.Fatalf("binary bytes/step %g >= json %g", bb, jb)
	}
}

func TestTableHelpers(t *testing.T) {
	tab := NewTable("t", "ms", []string{"a"}, []string{"x"})
	if !math.IsNaN(tab.Get("a", "x")) {
		t.Fatal("unset cell should be NaN")
	}
	if !math.IsNaN(tab.Get("zz", "x")) {
		t.Fatal("bad label should be NaN")
	}
	tab.Set("zz", "x", 5, Series{}) // silently ignored
	tab.Set("a", "x", 5, Series{Scheme: "a"})
	if tab.Get("a", "x") != 5 {
		t.Fatal("set/get")
	}
	text := tab.Format()
	if !strings.Contains(text, "5.00") {
		t.Fatalf("format: %s", text)
	}
}

func TestConcurrentClients(t *testing.T) {
	env, _ := quickEnvs(t)
	tbl, stats, err := ConcurrentClients(env, ConcurrentOptions{
		ClientCounts:   []int{1, 4},
		StepsPerClient: 4,
		Scheme:         fetch.TileSpatial1024,
		BatchSize:      4,
		SharedTraces:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || len(tbl.Cols) != 9 {
		t.Fatalf("table shape = %dx%d", len(tbl.Rows), len(tbl.Cols))
	}
	if len(stats) != 2 || stats[0].Clients != 1 || stats[1].Clients != 4 {
		t.Fatalf("stats rows = %+v", stats)
	}
	for _, rs := range stats {
		if rs.StepsPerSec <= 0 || rs.P50Ms <= 0 || rs.P95Ms < rs.P50Ms {
			t.Fatalf("implausible stats row: %+v", rs)
		}
		// Batched tile fetches over the framed protocol: the ratio must
		// be measured and below 1 under v3 compression.
		if rs.CompressionRatio <= 0 || rs.CompressionRatio >= 1.5 {
			t.Fatalf("compression ratio out of range: %+v", rs)
		}
	}
	for ri := range tbl.Rows {
		for ci := range tbl.Cols {
			if math.IsNaN(tbl.Cells[ri][ci]) {
				t.Fatalf("cell %s/%s missing", tbl.Rows[ri], tbl.Cols[ci])
			}
		}
	}
	// 4 clients on 2 shared traces issue identical concurrent requests;
	// with coalescing + cache the backend must not run one query per
	// client per step.
	out := tbl.Format()
	if !strings.Contains(out, "clients") {
		t.Fatalf("format output missing rows:\n%s", out)
	}
	// Bad options error.
	if _, _, err := ConcurrentClients(env, ConcurrentOptions{}); err == nil {
		t.Fatal("empty options must fail")
	}
}

func TestConcurrentWorkloads(t *testing.T) {
	env, _ := quickEnvs(t)
	// The zipf workload revisits a shared hot set: the backend cache
	// must record a measurable hit ratio (the frontend cache is
	// disabled for cache workloads, so revisits reach the backend).
	_, stats, err := ConcurrentClients(env, ConcurrentOptions{
		ClientCounts:   []int{2},
		StepsPerClient: 24,
		Scheme:         fetch.TileSpatial1024,
		BatchSize:      4,
		Workload:       "zipf",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].HitRatio <= 0 {
		t.Fatalf("zipf workload measured no backend cache hits: %+v", stats[0])
	}
	// The mixed workload needs at least one scanning client (i%4==3).
	_, stats, err = ConcurrentClients(env, ConcurrentOptions{
		ClientCounts:   []int{4},
		StepsPerClient: 8,
		Scheme:         fetch.TileSpatial1024,
		BatchSize:      4,
		Workload:       "mixed",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].HitRatio < 0 || stats[0].HitRatio > 1 {
		t.Fatalf("hit ratio out of range: %+v", stats[0])
	}
	// Unknown workload errors.
	if _, _, err := ConcurrentClients(env, ConcurrentOptions{
		ClientCounts: []int{1}, StepsPerClient: 1, Scheme: fetch.TileSpatial1024,
		Workload: "bogus",
	}); err == nil {
		t.Fatal("unknown workload must fail")
	}
}
