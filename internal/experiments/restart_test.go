package experiments

import "testing"

// TestRestartExperimentWarm is the acceptance property of the
// persistent tile store: an L2-warm restart answers the zipf hot set
// with measurably fewer database queries than the first boot, because
// the replayed working set comes off disk.
func TestRestartExperimentWarm(t *testing.T) {
	cfg := QuickConfig()
	cfg.NumPoints = 30_000 // two full precomputes per run; keep it fast
	res, err := RestartExperiment(cfg, RestartOptions{
		Steps:     40,
		BatchSize: 4,
		L2Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 || !res.L2 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	cold, warm := res.Phases[0], res.Phases[1]
	if cold.DBQueriesToWarm == 0 {
		t.Fatal("first boot ran no database queries — nothing was measured")
	}
	if warm.DBQueriesToWarm >= cold.DBQueriesToWarm {
		t.Fatalf("restart was not warmer: first boot %d db queries, restart %d",
			cold.DBQueriesToWarm, warm.DBQueriesToWarm)
	}
	if warm.L2Hits == 0 {
		t.Fatal("restart phase recorded no L2 hits")
	}
	if out := res.Format(); out == "" {
		t.Fatal("empty formatted report")
	}
}

// TestRestartExperimentBaseline: with no L2 directory the restart
// phase is just a second cold start — both phases query the database.
func TestRestartExperimentBaseline(t *testing.T) {
	cfg := QuickConfig()
	cfg.NumPoints = 30_000
	res, err := RestartExperiment(cfg, RestartOptions{Steps: 10, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.L2 {
		t.Fatal("baseline run reports L2 enabled")
	}
	for _, p := range res.Phases {
		if p.DBQueriesToWarm == 0 {
			t.Fatalf("phase %q ran no database queries", p.Phase)
		}
		if p.L2Hits != 0 {
			t.Fatalf("phase %q recorded L2 hits without an L2", p.Phase)
		}
	}
}
