package experiments

import (
	"fmt"
	"net"
	"path/filepath"
	"time"

	"kyrix/internal/cache"
	"kyrix/internal/frontend"
	"kyrix/internal/server"
	"kyrix/internal/workload"
)

// ClusterEnv is an in-process serving cluster: N backend nodes over
// identical copies of one dataset (the stand-in for a shared backing
// store), joined on one consistent-hash ring. Clients spread across
// the nodes like a load balancer would spread real traffic. Nodes can
// be stopped and restarted individually (StopNode/RestartNode) — the
// fault-injection surface the chaos and failover experiments drive.
type ClusterEnv struct {
	Cfg     Config
	Dataset *workload.Dataset
	Nodes   []*Env

	// URLs[i] is node i's base URL for its whole lifetime — a restarted
	// node rebinds the same address, so the ring and replog membership
	// stay valid across crash/restart cycles.
	URLs  []string
	copts []server.ClusterOptions
}

// NewClusterEnv builds an n-node cluster (n = 1 builds a standalone
// baseline node through the same code path, so 1-node and N-node runs
// are directly comparable). Listeners are created first: every node
// must know the full peer list — its own Self URL included — before
// any server exists.
func NewClusterEnv(cfg Config, kind string, n int) (*ClusterEnv, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: cluster of %d nodes", n)
	}
	var d *workload.Dataset
	switch kind {
	case "uniform":
		d = workload.Uniform(cfg.NumPoints, cfg.CanvasW, cfg.CanvasH, cfg.Seed)
	case "skewed":
		d = workload.Skewed(cfg.NumPoints, cfg.CanvasW, cfg.CanvasH, cfg.Seed)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset kind %q", kind)
	}
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("experiments: cluster listen: %w", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	ce := &ClusterEnv{Cfg: cfg, Dataset: d, URLs: urls}
	for i := 0; i < n; i++ {
		var copts server.ClusterOptions
		if n > 1 {
			copts = server.ClusterOptions{
				Self:        urls[i],
				Peers:       urls,
				PeerTimeout: 5 * time.Second,
			}
		}
		if cfg.ReplogRoot != "" {
			copts.Self = urls[i]
			copts.Peers = urls
			// Chaos-friendly timings: elections settle in well under a
			// second, and a dead peer's breaker reprobes fast enough
			// that a restarted node rejoins within one test timeout.
			copts.BreakerCooldown = 200 * time.Millisecond
			copts.Replog = server.ReplogOptions{
				Dir:             filepath.Join(cfg.ReplogRoot, fmt.Sprintf("node%d", i)),
				ElectionTimeout: 100 * time.Millisecond,
				SubmitTimeout:   5 * time.Second,
			}
		}
		ce.copts = append(ce.copts, copts)
		env, err := newEnv(cfg, d, copts, lns[i])
		if err != nil {
			ce.Close()
			for j := i; j < n; j++ {
				_ = lns[j].Close()
			}
			return nil, err
		}
		ce.Nodes = append(ce.Nodes, env)
	}
	return ce, nil
}

// StopNode kills node i: HTTP drain, replog close (WAL fsynced), store
// close. The node's WAL directories survive — RestartNode is a crash
// recovery, not a fresh join.
func (ce *ClusterEnv) StopNode(i int) {
	ce.Nodes[i].Close()
}

// RestartNode boots node i again on its original address over a fresh
// copy of the dataset; the replicated log replays its committed prefix
// on top, so the node rejoins with every committed update applied. The
// listen is retried briefly: the dying server's socket may still be in
// the kernel's grip for a moment after Close returns.
func (ce *ClusterEnv) RestartNode(i int) error {
	addr := ce.Nodes[i].BaseURL[len("http://"):]
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("experiments: rebind %s: %w", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	env, err := newEnv(ce.Cfg, ce.Dataset, ce.copts[i], ln)
	if err != nil {
		_ = ln.Close()
		return err
	}
	ce.Nodes[i] = env
	return nil
}

// Close shuts every node down (graceful drain per node; stopped nodes
// close idempotently).
func (ce *ClusterEnv) Close() {
	for _, e := range ce.Nodes {
		e.Close()
	}
}

// nodeCounters is one node's counter snapshot (taken before and after
// the measured window).
type nodeCounters struct {
	dbq, fills, serves, fallbacks, hot int64
	bc                                 cache.Stats
}

func snapshotNode(e *Env) nodeCounters {
	nc := nodeCounters{
		dbq: e.Srv.Stats.DBQueries.Load(),
		bc:  e.Srv.BackendCache().Stats(),
	}
	if cn := e.Srv.Cluster(); cn != nil {
		nc.fills = cn.Stats.PeerFills.Load()
		nc.serves = cn.Stats.PeerServes.Load()
		nc.fallbacks = cn.Stats.LocalFallbacks.Load()
		nc.hot = cn.Stats.HotReplicas.Load()
	}
	return nc
}

// ClusterRun measures the cluster under N parallel frontends spread
// round-robin across the nodes — the multi-node counterpart of
// ConcurrentClients. The table gains aggregate fill%% plus per-node
// hit%%/fill%%/dbq columns; the returned rows carry the same per-node
// stats machine-readably (BENCH JSON). Caches are cleared on every
// node before each client count so rows are comparable cold starts.
func ClusterRun(ce *ClusterEnv, opts ConcurrentOptions) (*Table, []ConcurrentRowStats, error) {
	if len(opts.ClientCounts) == 0 || opts.StepsPerClient <= 0 {
		return nil, nil, fmt.Errorf("experiments: cluster run needs client counts and steps")
	}
	nNodes := len(ce.Nodes)
	rows := make([]string, len(opts.ClientCounts))
	for i, n := range opts.ClientCounts {
		rows[i] = fmt.Sprintf("%d clients", n)
	}
	workloadName := opts.Workload
	if workloadName == "" {
		workloadName = "walk"
	}
	cols := []string{"steps/s", "mean ms", "p50 ms", "p95 ms", "dbq/step", "hit%", "fill%"}
	for j := 0; j < nNodes; j++ {
		cols = append(cols,
			fmt.Sprintf("n%d hit%%", j),
			fmt.Sprintf("n%d fill%%", j),
			fmt.Sprintf("n%d dbq", j))
	}
	t := NewTable(
		fmt.Sprintf("Cluster: %d nodes, %s over %q (%s workload)", nNodes, opts.Scheme.Name(), ce.Cfg.Name, workloadName),
		"mixed units, see columns", rows, cols)
	t.Notes = append(t.Notes,
		fmt.Sprintf("steps/client=%d batch=%d proto=%s; clients round-robin across nodes; all caches cleared per row",
			opts.StepsPerClient, opts.BatchSize, protoName(opts.Protocol)),
		"dbq/step: database queries per measured step summed over ALL nodes — the cluster-wide cost the ring exists to cut",
		"fill%: peer fills / (peer fills + db queries) — the fraction of cache fills served by the owning peer instead of a database",
		"n<i> columns: the same metrics per node (n<i> dbq is that node's queries per cluster-wide step)")

	var stats []ConcurrentRowStats
	for _, n := range opts.ClientCounts {
		row := fmt.Sprintf("%d clients", n)
		for _, e := range ce.Nodes {
			e.Srv.BackendCache().Clear()
		}

		traces, err := buildTraces(ce.Nodes[0], opts, n)
		if err != nil {
			return nil, nil, err
		}

		before := make([]nodeCounters, nNodes)
		sweep, err := runClientSweep(traces, opts, func(i int) (*frontend.Client, error) {
			// Round-robin node assignment — the load balancer.
			node := ce.Nodes[i%nNodes]
			return newSweepClient(node.BaseURL, node.CA, ce.Cfg, opts)
		}, func() {
			for j, e := range ce.Nodes {
				before[j] = snapshotNode(e)
			}
		})
		if err != nil {
			return nil, nil, err
		}
		steps := sweep.steps

		var nodeStats []NodeRowStats
		var totalDbq, totalFills float64
		var hitsDelta, missesDelta int64
		for j, e := range ce.Nodes {
			after := snapshotNode(e)
			dbq := float64(after.dbq - before[j].dbq)
			fills := float64(after.fills - before[j].fills)
			bcDelta := cache.Stats{
				Hits:   after.bc.Hits - before[j].bc.Hits,
				Misses: after.bc.Misses - before[j].bc.Misses,
			}
			hitsDelta += bcDelta.Hits
			missesDelta += bcDelta.Misses
			totalDbq += dbq
			totalFills += fills
			fillRatio := 0.0
			if fills+dbq > 0 {
				fillRatio = fills / (fills + dbq)
			}
			nodeStats = append(nodeStats, NodeRowStats{
				Node:           e.BaseURL,
				HitRatio:       bcDelta.HitRatio(),
				PeerFillRatio:  fillRatio,
				DbqPerStep:     dbq / steps,
				PeerFills:      after.fills - before[j].fills,
				PeerServes:     after.serves - before[j].serves,
				LocalFallbacks: after.fallbacks - before[j].fallbacks,
				HotReplicas:    after.hot - before[j].hot,
			})
		}
		aggHit := cache.Stats{Hits: hitsDelta, Misses: missesDelta}.HitRatio()
		aggFill := 0.0
		if totalFills+totalDbq > 0 {
			aggFill = totalFills / (totalFills + totalDbq)
		}

		rs := sweep.rowStats(n)
		rs.DbqPerStep = totalDbq / steps
		rs.HitRatio = aggHit
		rs.Nodes = nodeStats
		stats = append(stats, rs)

		t.Set(row, "steps/s", rs.StepsPerSec, Series{})
		t.Set(row, "mean ms", rs.MeanMs, Series{})
		t.Set(row, "p50 ms", rs.P50Ms, Series{})
		t.Set(row, "p95 ms", rs.P95Ms, Series{})
		t.Set(row, "dbq/step", rs.DbqPerStep, Series{})
		t.Set(row, "hit%", 100*aggHit, Series{})
		t.Set(row, "fill%", 100*aggFill, Series{})
		for j, ns := range nodeStats {
			t.Set(row, fmt.Sprintf("n%d hit%%", j), 100*ns.HitRatio, Series{})
			t.Set(row, fmt.Sprintf("n%d fill%%", j), 100*ns.PeerFillRatio, Series{})
			t.Set(row, fmt.Sprintf("n%d dbq", j), ns.DbqPerStep, Series{})
		}
	}
	return t, stats, nil
}
