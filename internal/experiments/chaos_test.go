package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"kyrix/internal/server"
	"kyrix/internal/storage"
)

// chaosConfig is the smallest environment that still exercises the full
// stack: tiny dataset (restart replays must be fast), replicated log
// enabled under t.TempDir.
func chaosConfig(t *testing.T) Config {
	cfg := QuickConfig()
	cfg.Name = "chaos"
	cfg.NumPoints = 4_000
	cfg.CanvasW = 8192
	cfg.CanvasH = 4096
	cfg.TileSizes = []float64{1024}
	cfg.ReplogRoot = t.TempDir()
	return cfg
}

// postCountingUpdate submits "set point 1's val to k" to url. The value
// written IS the sequence number, so a retry of the same k after a lost
// ack is idempotent — which makes "acked k" a safe lower bound on the
// final value. Returns nil once the node acked the update.
func postCountingUpdate(url string, k int) error {
	req := server.UpdateRequest{
		SQL:  "UPDATE points SET val = ? WHERE id = 1",
		Args: []server.ArgValue{{Kind: storage.TFloat64, F: float64(k)}},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("update %d: HTTP %d", k, resp.StatusCode)
	}
	return nil
}

// ackUpdates submits counting updates from+1..to against the given
// nodes (rotating on failure — a killed leader or mid-election 503 just
// moves the client to the next survivor), retrying each k until acked.
func ackUpdates(t *testing.T, urls []string, from, to int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for k := from + 1; k <= to; k++ {
		for attempt := 0; ; attempt++ {
			err := postCountingUpdate(urls[attempt%len(urls)], k)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("update %d never acked: %v", k, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

// val1 reads point 1's val straight out of a node's database.
func val1(t *testing.T, e *Env) float64 {
	t.Helper()
	res, err := e.Srv.DB().Query("SELECT val FROM points WHERE id = 1")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("query val: %v (%d rows)", err, len(res.Rows))
	}
	return res.Rows[0][0].F
}

// waitVal waits for a node's applied state to reach the acked value.
func waitVal(t *testing.T, e *Env, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if int(val1(t, e)) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s: val=%v, want %d (applied=%d)",
				e.BaseURL, val1(t, e), want, e.Srv.Replog().Applied())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func leaderIndex(t *testing.T, ce *ClusterEnv, live []int) int {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, i := range live {
			if ce.Nodes[i].Srv.Replog().IsLeader() {
				return i
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no leader elected")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getTile(url string) error {
	resp, err := http.Get(url + "/tile?canvas=main&layer=0&col=0&row=0&size=1024")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tile: HTTP %d", resp.StatusCode)
	}
	return nil
}

// TestChaosLeaderKillFailover is the acceptance scenario: a 3-node
// cluster takes quorum-committed updates, the leader is killed mid-
// stream, the survivors elect a replacement and keep acking updates
// with zero committed loss, and the restarted ex-leader replays its
// way back to the same state.
func TestChaosLeaderKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	ce, err := NewClusterEnv(chaosConfig(t), "uniform", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()

	all := []int{0, 1, 2}
	ld := leaderIndex(t, ce, all)
	ackUpdates(t, ce.URLs, 0, 5)

	// Kill the leader. Updates 6..10 must keep committing through the
	// survivors' new leader.
	ce.StopNode(ld)
	survivors := make([]int, 0, 2)
	var survivorURLs []string
	for _, i := range all {
		if i != ld {
			survivors = append(survivors, i)
			survivorURLs = append(survivorURLs, ce.URLs[i])
		}
	}
	ackUpdates(t, survivorURLs, 5, 10)

	newLd := leaderIndex(t, ce, survivors)
	if newLd == ld {
		t.Fatalf("dead node %d still leader", ld)
	}
	for _, i := range survivors {
		waitVal(t, ce.Nodes[i], 10)
		if err := getTile(ce.URLs[i]); err != nil {
			t.Fatalf("survivor %d stopped serving tiles: %v", i, err)
		}
	}

	// Crash recovery: the ex-leader reuses its WAL dir and replays the
	// committed prefix (its acked 1..5 plus the 6..10 it missed).
	if err := ce.RestartNode(ld); err != nil {
		t.Fatal(err)
	}
	waitVal(t, ce.Nodes[ld], 10)
	if err := getTile(ce.URLs[ld]); err != nil {
		t.Fatalf("restarted node not serving tiles: %v", err)
	}
}

// TestChaosPartitionedFollowerCatchesUp partitions one follower at the
// transport (symmetric drops), commits updates through the majority,
// heals, and requires the follower to converge without a restart.
func TestChaosPartitionedFollowerCatchesUp(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	ce, err := NewClusterEnv(chaosConfig(t), "uniform", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()

	all := []int{0, 1, 2}
	ld := leaderIndex(t, ce, all)
	part := (ld + 1) % 3 // a follower

	// Symmetric partition: the follower drops everyone, everyone drops
	// the follower.
	for _, i := range all {
		if i == part {
			continue
		}
		ce.Nodes[i].Srv.Cluster().Transport().FailDrop(ce.URLs[part], true)
		ce.Nodes[part].Srv.Cluster().Transport().FailDrop(ce.URLs[i], true)
	}

	var majorityURLs []string
	majority := make([]int, 0, 2)
	for _, i := range all {
		if i != part {
			majority = append(majority, i)
			majorityURLs = append(majorityURLs, ce.URLs[i])
		}
	}
	ackUpdates(t, majorityURLs, 0, 6)
	for _, i := range majority {
		waitVal(t, ce.Nodes[i], 6)
	}
	if got := int(val1(t, ce.Nodes[part])); got == 6 {
		t.Fatal("partitioned follower saw updates through a dropped transport")
	}

	for _, i := range all {
		ce.Nodes[i].Srv.Cluster().Transport().FailReset()
	}
	waitVal(t, ce.Nodes[part], 6)
}

// TestChaosFullRestartReplaysCommitted stops every node, then restarts
// the cluster over the surviving WAL dirs: all committed updates must
// be reapplied onto the freshly rebuilt databases.
func TestChaosFullRestartReplaysCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	ce, err := NewClusterEnv(chaosConfig(t), "uniform", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()

	leaderIndex(t, ce, []int{0, 1, 2})
	ackUpdates(t, ce.URLs, 0, 4)

	for i := range ce.Nodes {
		ce.StopNode(i)
	}
	for i := range ce.Nodes {
		if err := ce.RestartNode(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := range ce.Nodes {
		waitVal(t, ce.Nodes[i], 4)
	}
	// The tier still serves and still replicates: one more update.
	ackUpdates(t, ce.URLs, 4, 5)
	for i := range ce.Nodes {
		waitVal(t, ce.Nodes[i], 5)
	}
}
