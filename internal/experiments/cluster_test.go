package experiments

import (
	"testing"

	"kyrix/internal/fetch"
)

// smokeConfig is a small-but-contended setup: enough dataset that the
// zipf hot set does not fit one node's backend cache, so the 2-node
// cluster's doubled aggregate capacity (plus single-fill ownership)
// shows up as fewer database queries per step.
func smokeConfig() Config {
	cfg := QuickConfig()
	cfg.Name = "cluster-smoke"
	cfg.NumPoints = 60_000
	cfg.CanvasW = 16384
	cfg.CanvasH = 8192
	cfg.BackendCacheBytes = 1 << 20
	cfg.CacheAdmission = "lfu"
	return cfg
}

func smokeOpts(clients int) ConcurrentOptions {
	opts := DefaultConcurrentOptions()
	opts.ClientCounts = []int{clients}
	opts.StepsPerClient = 24
	opts.Workload = "zipf"
	opts.Scheme = fetch.DBox50
	opts.BatchSize = 0
	return opts
}

// TestClusterSmokeTwoNode is the in-process cluster smoke: two nodes,
// a zipf pan trace driven through both, asserting (1) peer fills
// actually happened (the ring routed traffic), (2) nobody fell back
// (no dead peers in-process), and (3) cluster-wide database queries
// per step beat the single-node baseline at the same client count —
// the scaling claim the subsystem exists for.
func TestClusterSmokeTwoNode(t *testing.T) {
	cfg := smokeConfig()
	const clients = 8

	single, err := NewClusterEnv(cfg, "uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	_, baseRows, err := ClusterRun(single, smokeOpts(clients))
	if err != nil {
		t.Fatal(err)
	}

	duo, err := NewClusterEnv(cfg, "uniform", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer duo.Close()
	tbl, rows, err := ClusterRun(duo, smokeOpts(clients))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl.Format())

	base, two := baseRows[0], rows[0]
	if len(two.Nodes) != 2 {
		t.Fatalf("expected 2 node stats, got %d", len(two.Nodes))
	}
	var fills, fallbacks int64
	for _, ns := range two.Nodes {
		fills += ns.PeerFills
		fallbacks += ns.LocalFallbacks
	}
	if fills == 0 {
		t.Fatal("no peer fills: the ring routed nothing across nodes")
	}
	if fallbacks != 0 {
		t.Fatalf("%d local fallbacks on a healthy in-process cluster", fallbacks)
	}
	if two.DbqPerStep >= base.DbqPerStep {
		t.Fatalf("2-node cluster dbq/step %.3f not below 1-node baseline %.3f",
			two.DbqPerStep, base.DbqPerStep)
	}
}

// TestClusterRunSingleNodeStandalone: a 1-node ClusterEnv serves
// standalone (no cluster machinery) but flows through the same
// harness, keeping baselines comparable.
func TestClusterRunSingleNodeStandalone(t *testing.T) {
	cfg := smokeConfig()
	cfg.NumPoints = 20_000
	ce, err := NewClusterEnv(cfg, "uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()
	if ce.Nodes[0].Srv.Cluster() != nil {
		t.Fatal("1-node env must serve standalone")
	}
	_, rows, err := ClusterRun(ce, smokeOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	ns := rows[0].Nodes
	if len(ns) != 1 || ns[0].PeerFills != 0 || ns[0].PeerFillRatio != 0 {
		t.Fatalf("standalone node shows cluster traffic: %+v", ns)
	}
	if rows[0].DbqPerStep <= 0 {
		t.Fatal("standalone run measured no database work")
	}
}
