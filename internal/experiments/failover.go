package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"time"

	"kyrix/internal/server"
	"kyrix/internal/storage"
)

// Failover experiment: the replicated update log's availability claim,
// measured end to end. A 3-node cluster serves tiles over HTTP while a
// client stream interleaves quorum-committed updates; mid-run the
// leader is killed. The survivors must elect a replacement, keep
// serving tiles, keep acking updates, and lose none of the updates
// they acked — the headline numbers are the steady vs failover tile
// p50 and UpdatesLost (which must be 0).

// FailoverOptions configures one failover measurement.
type FailoverOptions struct {
	// StepsPerPhase is the number of tile GETs per phase (steady,
	// failover).
	StepsPerPhase int
	// UpdateEvery interleaves one counting update per this many tile
	// steps.
	UpdateEvery int
	// ReplogRoot holds the per-node WAL dirs (required).
	ReplogRoot string
}

// DefaultFailoverOptions measures 200 tile steps per phase with an
// update every 10 steps.
func DefaultFailoverOptions(replogRoot string) FailoverOptions {
	return FailoverOptions{
		StepsPerPhase: 200,
		UpdateEvery:   10,
		ReplogRoot:    replogRoot,
	}
}

// FailoverPhase is one phase's measurements.
type FailoverPhase struct {
	// Phase is "steady" or "failover".
	Phase string `json:"phase"`
	// Steps is the number of tile requests measured.
	Steps int `json:"steps"`
	// P50Ms / P95Ms / MeanMs summarize per-request tile latency.
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	MeanMs float64 `json:"meanMs"`
	// TileErrors counts failed tile GETs (transient 503s during the
	// election count here; they are retried, not lost).
	TileErrors int `json:"tileErrors"`
	// UpdatesAcked is how many updates this phase's client got a 200
	// for.
	UpdatesAcked int `json:"updatesAcked"`
	// UpdateRetries counts submit attempts beyond the first per update
	// (failover: the retries that bridge the election window).
	UpdateRetries int `json:"updateRetries"`
}

// FailoverResult is a whole failover experiment — what kyrix-bench
// -failover persists as BENCH_failover.json.
type FailoverResult struct {
	Config string          `json:"config"`
	Nodes  int             `json:"nodes"`
	Phases []FailoverPhase `json:"phases"`
	// UpdatesAcked is the total count of acknowledged updates across
	// phases; UpdatesLost is how many of those were missing from the
	// survivors' replicated state at the end. The log's contract is
	// that UpdatesLost is always 0.
	UpdatesAcked int `json:"updatesAcked"`
	UpdatesLost  int `json:"updatesLost"`
	// ElectionMs is how long after the kill the survivors took to
	// elect a leader (first successful update ack is the observable
	// proxy).
	ElectionMs float64 `json:"electionMs"`
}

// Format renders the result as an aligned comparison table.
func (r *FailoverResult) Format() string {
	out := fmt.Sprintf("Failover: %d-node replicated /update over %q (leader killed between phases)\n", r.Nodes, r.Config)
	out += fmt.Sprintf("  %-10s %8s %10s %10s %10s %8s %8s %8s\n",
		"phase", "steps", "p50 ms", "p95 ms", "mean ms", "tile-err", "acked", "retries")
	for _, p := range r.Phases {
		out += fmt.Sprintf("  %-10s %8d %10.2f %10.2f %10.2f %8d %8d %8d\n",
			p.Phase, p.Steps, p.P50Ms, p.P95Ms, p.MeanMs, p.TileErrors, p.UpdatesAcked, p.UpdateRetries)
	}
	out += fmt.Sprintf("  updates acked %d, lost %d; re-election bridged in %.0fms\n",
		r.UpdatesAcked, r.UpdatesLost, r.ElectionMs)
	return out
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// failoverPhase drives one phase's tile+update stream against urls.
// Updates carry their sequence number as the written value (idempotent
// under retry), starting after *acked; every ack advances *acked.
func failoverPhase(ce *ClusterEnv, opts FailoverOptions, urls []string, phase string, acked *int) (FailoverPhase, error) {
	p := FailoverPhase{Phase: phase}
	rng := rand.New(rand.NewSource(42))
	cols := int(ce.Cfg.CanvasW / 1024)
	rows := int(ce.Cfg.CanvasH / 1024)
	client := &http.Client{Timeout: 10 * time.Second}
	var durs []float64
	for step := 0; step < opts.StepsPerPhase; step++ {
		url := fmt.Sprintf("%s/tile?canvas=main&layer=0&col=%d&row=%d&size=1024",
			urls[step%len(urls)], rng.Intn(cols), rng.Intn(rows))
		start := time.Now()
		resp, err := client.Get(url)
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("HTTP %d", resp.StatusCode)
			}
		}
		if err != nil {
			p.TileErrors++
		} else {
			durs = append(durs, float64(time.Since(start).Microseconds())/1000)
		}
		if opts.UpdateEvery > 0 && (step+1)%opts.UpdateEvery == 0 {
			k := *acked + 1
			deadline := time.Now().Add(15 * time.Second)
			for attempt := 0; ; attempt++ {
				err := postFailoverUpdate(client, urls[attempt%len(urls)], k)
				if err == nil {
					*acked = k
					p.UpdatesAcked++
					p.UpdateRetries += attempt
					break
				}
				if time.Now().After(deadline) {
					return p, fmt.Errorf("experiments: update %d never acked: %w", k, err)
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
	}
	p.Steps = len(durs)
	sort.Float64s(durs)
	var sum float64
	for _, d := range durs {
		sum += d
	}
	if len(durs) > 0 {
		p.MeanMs = sum / float64(len(durs))
	}
	p.P50Ms = quantile(durs, 0.50)
	p.P95Ms = quantile(durs, 0.95)
	return p, nil
}

func postFailoverUpdate(client *http.Client, url string, k int) error {
	req := server.UpdateRequest{
		SQL:  "UPDATE points SET val = ? WHERE id = 1",
		Args: []server.ArgValue{{Kind: storage.TFloat64, F: float64(k)}},
	}
	body, _ := json.Marshal(req)
	resp, err := client.Post(url+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// FailoverExperiment builds a 3-node replicated cluster, measures a
// steady phase, kills the leader, and measures the failover phase
// against the survivors. The returned result reports per-phase tile
// latency, the acked-update count, and how many acked updates the
// surviving replicated state is missing (contractually 0).
func FailoverExperiment(cfg Config, opts FailoverOptions) (*FailoverResult, error) {
	if opts.StepsPerPhase <= 0 {
		opts.StepsPerPhase = 200
	}
	if opts.ReplogRoot == "" {
		return nil, fmt.Errorf("experiments: failover needs a ReplogRoot")
	}
	cfg.ReplogRoot = opts.ReplogRoot
	ce, err := NewClusterEnv(cfg, "uniform", 3)
	if err != nil {
		return nil, err
	}
	defer ce.Close()

	// Wait for the first election so "steady" measures a settled tier.
	leader := -1
	deadline := time.Now().Add(10 * time.Second)
	for leader < 0 {
		for i := range ce.Nodes {
			if ce.Nodes[i].Srv.Replog().IsLeader() {
				leader = i
				break
			}
		}
		if leader < 0 {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("experiments: no leader elected")
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	res := &FailoverResult{Config: cfg.Name, Nodes: 3}
	acked := 0
	steady, err := failoverPhase(ce, opts, ce.URLs, "steady", &acked)
	if err != nil {
		return nil, err
	}
	res.Phases = append(res.Phases, steady)

	// Kill whoever leads NOW (the lease may have moved since startup).
	for i := range ce.Nodes {
		if ce.Nodes[i].Srv.Replog().IsLeader() {
			leader = i
		}
	}
	ce.StopNode(leader)
	var survivorURLs []string
	var survivors []int
	for i := range ce.Nodes {
		if i != leader {
			survivors = append(survivors, i)
			survivorURLs = append(survivorURLs, ce.URLs[i])
		}
	}
	// Election window: time from the kill until a survivor leads. The
	// failover phase then measures the tier mid-/post-recovery.
	res.ElectionMs = float64(failoverElectionProxy(ce, survivors, time.Now()).Microseconds()) / 1000
	failover, err := failoverPhase(ce, opts, survivorURLs, "failover", &acked)
	if err != nil {
		return nil, err
	}
	res.Phases = append(res.Phases, failover)
	res.UpdatesAcked = acked

	// Zero-loss audit: every survivor's replicated state must hold the
	// last acked value (updates are applied in log order, and the value
	// written is the sequence number).
	res.UpdatesLost = 0
	for _, i := range survivors {
		q, err := ce.Nodes[i].Srv.DB().Query("SELECT val FROM points WHERE id = 1")
		if err != nil || len(q.Rows) != 1 {
			return nil, fmt.Errorf("experiments: audit query on node %d: %v", i, err)
		}
		if got := int(q.Rows[0][0].F); got < acked {
			lost := acked - got
			if lost > res.UpdatesLost {
				res.UpdatesLost = lost
			}
		}
	}
	return res, nil
}

// failoverElectionProxy waits (bounded) for a survivor to lead and
// returns the elapsed time since start.
func failoverElectionProxy(ce *ClusterEnv, survivors []int, start time.Time) time.Duration {
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, i := range survivors {
			if ce.Nodes[i].Srv.Replog().IsLeader() {
				return time.Since(start)
			}
		}
		if time.Now().After(deadline) {
			return time.Since(start)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
