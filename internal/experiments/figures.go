package experiments

import (
	"context"
	"fmt"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/frontend"
	"kyrix/internal/geom"
	"kyrix/internal/prefetch"
	"kyrix/internal/server"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

// FigureSchemes runs the paper's eight schemes over the three Fig. 5
// traces against env and fills a Figure 6/7-shaped table.
func FigureSchemes(env *Env, title string) (*Table, error) {
	traces := workload.PaperTraces(env.Dataset, 1024, env.Cfg.ViewportW, env.Cfg.ViewportH)
	var cols []string
	for _, tr := range traces {
		if err := tr.Validate(env.Dataset.Canvas()); err != nil {
			return nil, err
		}
		cols = append(cols, tr.Name)
	}
	t := NewTable(title, "ms per pan step", SortedSchemeNames(), cols)
	for _, g := range fetch.PaperSchemes() {
		for _, tr := range traces {
			s, err := env.RunScheme(g, tr)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", g.Name(), tr.Name, err)
			}
			t.Set(g.Name(), tr.Name, s.MeanMs, s)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("dataset=%s n=%d canvas=%gx%g runs=%d codec=%s",
			env.Dataset.Name, len(env.Dataset.Points),
			env.Cfg.CanvasW, env.Cfg.CanvasH, env.Cfg.Runs, env.Cfg.Codec))
	return t, nil
}

// Figure6 reproduces "The average response times of dynamic box and
// static tiling on uniformly distributed data".
func Figure6(cfg Config) (*Table, *Env, error) {
	env, err := NewEnv(cfg, "uniform")
	if err != nil {
		return nil, nil, err
	}
	t, err := FigureSchemes(env, "Figure 6: average response times on Uniform")
	if err != nil {
		env.Close()
		return nil, nil, err
	}
	return t, env, nil
}

// Figure7 reproduces "The average response times of dynamic box and
// static tiling on skewed data".
func Figure7(cfg Config) (*Table, *Env, error) {
	env, err := NewEnv(cfg, "skewed")
	if err != nil {
		return nil, nil, err
	}
	t, err := FigureSchemes(env, "Figure 7: average response times on Skewed")
	if err != nil {
		env.Close()
		return nil, nil, err
	}
	return t, env, nil
}

// Figure4 validates the fetch-volume intuition behind the Fig. 4
// illustration: per pan step, how many requests each granularity
// issues and how many rows it pulls (the "why" behind Figures 6–7).
func Figure4(env *Env) (*Table, error) {
	traces := workload.PaperTraces(env.Dataset, 1024, env.Cfg.ViewportW, env.Cfg.ViewportH)
	schemes := []fetch.Granularity{fetch.DBoxExact, fetch.DBox50,
		fetch.TileSpatial256, fetch.TileSpatial1024, fetch.TileSpatial4096}
	rows := []string{}
	for _, g := range schemes {
		rows = append(rows, g.Name()+" req/step", g.Name()+" rows/step")
	}
	cols := []string{}
	for _, tr := range traces {
		cols = append(cols, tr.Name)
	}
	t := NewTable("Figure 4 diagnostics: fetch volume per granularity", "count", rows, cols)
	for _, g := range schemes {
		for _, tr := range traces {
			s, err := env.RunScheme(g, tr)
			if err != nil {
				return nil, err
			}
			t.Set(g.Name()+" req/step", tr.Name, s.RequestsPerStep, s)
			t.Set(g.Name()+" rows/step", tr.Name, s.RowsPerStep, s)
		}
	}
	return t, nil
}

// Figure5 renders the three traces' step rectangles as text.
func Figure5(cfg Config, kind string) (string, error) {
	var d *workload.Dataset
	switch kind {
	case "uniform":
		d = workload.Uniform(1, cfg.CanvasW, cfg.CanvasH, cfg.Seed)
	case "skewed":
		d = workload.Skewed(1, cfg.CanvasW, cfg.CanvasH, cfg.Seed)
	default:
		return "", fmt.Errorf("experiments: unknown dataset kind %q", kind)
	}
	out := fmt.Sprintf("Figure 5: viewport traces on %s (canvas %gx%g", kind, d.CanvasW, d.CanvasH)
	if d.DenseRect.Valid() {
		out += fmt.Sprintf(", dense area %s", d.DenseRect)
	}
	out += ")\n"
	for _, tr := range workload.PaperTraces(d, 1024, cfg.ViewportW, cfg.ViewportH) {
		out += fmt.Sprintf("%s (%d pan steps):\n", tr.Name, tr.NumPans())
		for i, s := range tr.Steps {
			out += fmt.Sprintf("  step %2d: %s\n", i, s)
		}
	}
	return out, nil
}

// AblationInflation sweeps the dynamic-box growth fraction on trace-c
// ("there are numerous ways to calculate a box"; A1 in DESIGN.md).
func AblationInflation(env *Env) (*Table, error) {
	traces := workload.PaperTraces(env.Dataset, 1024, env.Cfg.ViewportW, env.Cfg.ViewportH)
	trc := traces[2]
	fractions := []float64{0, 0.25, 0.5, 1.0, 2.0}
	rows := []string{}
	for _, f := range fractions {
		rows = append(rows, fmt.Sprintf("inflate %d%%", int(f*100)))
	}
	rows = append(rows, "adaptive (budget)")
	t := NewTable("Ablation A1: dynamic-box inflation sweep", "value",
		rows, []string{"mean ms", "req/step", "rows/step"})
	runOne := func(label string, g fetch.Granularity) error {
		s, err := env.RunScheme(g, trc)
		if err != nil {
			return err
		}
		t.Set(label, "mean ms", s.MeanMs, s)
		t.Set(label, "req/step", s.RequestsPerStep, s)
		t.Set(label, "rows/step", s.RowsPerStep, s)
		return nil
	}
	for _, f := range fractions {
		g := fetch.Granularity{Kind: "dbox", Design: "spatial", Inflate: f}
		if err := runOne(fmt.Sprintf("inflate %d%%", int(f*100)), g); err != nil {
			return nil, err
		}
	}
	density := float64(len(env.Dataset.Points)) / (env.Cfg.CanvasW * env.Cfg.CanvasH)
	budget := int(density * env.Cfg.ViewportW * env.Cfg.ViewportH * 2)
	adaptive := fetch.Granularity{Kind: "dbox", Design: "spatial",
		Inflate: 2.0, Adaptive: true, RowBudget: budget}
	if err := runOne("adaptive (budget)", adaptive); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("trace-c; adaptive row budget = %d", budget))
	return t, nil
}

// AblationCache measures the two caches of §3.1 on a revisit-heavy
// trace: both caches on, frontend only, backend only, none (A2).
func AblationCache(env *Env) (*Table, error) {
	mid := geom.Point{
		X: env.Cfg.CanvasW/2 - env.Cfg.ViewportW/2,
		Y: env.Cfg.CanvasH/2 - env.Cfg.ViewportH/2,
	}
	far := geom.Point{X: mid.X + 3*env.Cfg.ViewportW, Y: mid.Y}
	tr := workload.RevisitTrace(mid, far, 10, env.Cfg.ViewportW, env.Cfg.ViewportH)

	t := NewTable("Ablation A2: cache configurations on a revisit trace",
		"value",
		[]string{"both caches", "frontend only", "backend only", "no caches"},
		[]string{"mean ms", "req/step"})
	// Tiles exercise the frontend cache; dbox never reuses boxes
	// across revisits (its frontend "cache" is the current box), so
	// tiles are the interesting scheme here.
	g := fetch.TileSpatial1024

	run := func(label string, feBytes int64, backendOn bool) error {
		// Swap cache budgets by running a bespoke client and
		// controlling the backend cache via Clear-before-every-pan
		// when off.
		env.Srv.BackendCache().Clear()
		c, err := frontend.NewClient(env.BaseURL, env.CA, frontend.Options{
			Scheme: g, Codec: env.Cfg.Codec, CacheBytes: feBytes,
		})
		if err != nil {
			return err
		}
		if _, err := c.Pan(tr.Steps[0]); err != nil {
			return err
		}
		var sumMs, reqs float64
		for _, step := range tr.Steps[1:] {
			if !backendOn {
				env.Srv.BackendCache().Clear()
			}
			rep, err := c.Pan(step)
			if err != nil {
				return err
			}
			sumMs += float64(rep.Duration.Microseconds()) / 1000
			reqs += float64(rep.Requests)
		}
		n := float64(tr.NumPans())
		s := Series{Scheme: label, Trace: tr.Name, MeanMs: sumMs / n, RequestsPerStep: reqs / n}
		t.Set(label, "mean ms", s.MeanMs, s)
		t.Set(label, "req/step", s.RequestsPerStep, s)
		return nil
	}
	if err := run("both caches", env.Cfg.FrontendCacheBytes, true); err != nil {
		return nil, err
	}
	if err := run("frontend only", env.Cfg.FrontendCacheBytes, false); err != nil {
		return nil, err
	}
	if err := run("backend only", 0, true); err != nil {
		return nil, err
	}
	if err := run("no caches", 0, false); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationPrefetch evaluates momentum-based prefetching in the dynamic
// box context — exactly the study §4 proposes (A3).
func AblationPrefetch(env *Env) (*Table, error) {
	start := geom.Point{X: env.Cfg.CanvasW / 4, Y: env.Cfg.CanvasH / 2}
	n := 20
	cv := workload.ConstantVelocityTrace(start, env.Cfg.ViewportW, 0, n,
		env.Cfg.ViewportW, env.Cfg.ViewportH)
	rw := workload.RandomWalkTrace(start, env.Cfg.ViewportW, n,
		env.Cfg.ViewportW, env.Cfg.ViewportH, env.Cfg.Seed, env.Dataset.Canvas())

	t := NewTable("Ablation A3: momentum prefetching with dynamic boxes",
		"value",
		[]string{"no prefetch / constant-v", "momentum / constant-v",
			"no prefetch / random-walk", "momentum / random-walk"},
		[]string{"mean ms", "hit rate %"})

	run := func(label string, tr *workload.Trace, usePrefetch bool) error {
		env.Srv.BackendCache().Clear()
		c, err := frontend.NewClient(env.BaseURL, env.CA, frontend.Options{
			Scheme: fetch.DBoxExact, Codec: env.Cfg.Codec,
			CacheBytes: env.Cfg.FrontendCacheBytes,
		})
		if err != nil {
			return err
		}
		var pf *prefetch.Prefetcher
		if usePrefetch {
			pf = prefetch.NewPrefetcher(prefetch.NewMomentum(3), c, []int{0}, env.Dataset.Canvas())
		}
		if _, err := c.Pan(tr.Steps[0]); err != nil {
			return err
		}
		if pf != nil {
			pf.OnPan(c.Viewport())
		}
		var sumMs float64
		hits := 0
		for _, step := range tr.Steps[1:] {
			rep, err := c.Pan(step)
			if err != nil {
				return err
			}
			sumMs += float64(rep.Duration.Microseconds()) / 1000
			if rep.Requests == 0 {
				hits++
			}
			if pf != nil {
				pf.OnPan(c.Viewport())
			}
		}
		steps := float64(tr.NumPans())
		s := Series{Scheme: label, Trace: tr.Name,
			MeanMs: sumMs / steps, RequestsPerStep: float64(hits)}
		t.Set(label, "mean ms", s.MeanMs, s)
		t.Set(label, "hit rate %", 100*float64(hits)/steps, s)
		return nil
	}
	if err := run("no prefetch / constant-v", cv, false); err != nil {
		return nil, err
	}
	if err := run("momentum / constant-v", cv, true); err != nil {
		return nil, err
	}
	if err := run("no prefetch / random-walk", rw, false); err != nil {
		return nil, err
	}
	if err := run("momentum / random-walk", rw, true); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationSeparability measures what the §3.2 separability optimization
// saves: precomputation time with the separable shortcut (index the raw
// attributes) vs the full materialization path (copy + bbox + indexes)
// on the same data (A4).
func AblationSeparability(cfg Config) (*Table, error) {
	d := workload.Uniform(cfg.NumPoints, cfg.CanvasW, cfg.CanvasH, cfg.Seed)
	t := NewTable("Ablation A4: separable shortcut vs full precompute",
		"seconds",
		[]string{"separable (skip precompute)", "non-separable (materialize)"},
		[]string{"precompute time"})

	run := func(label string, placement *spec.Placement, reg *spec.Registry) error {
		db := sqldb.NewDB()
		if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
			return err
		}
		if err := loadPoints(db, d); err != nil {
			return err
		}
		app := &spec.App{
			Name: "sep",
			Canvases: []spec.Canvas{{
				ID: "main", W: d.CanvasW, H: d.CanvasH,
				Transforms: []spec.Transform{{
					ID: "pts", Query: "SELECT * FROM points", Columns: pointColumns,
				}},
				Layers: []spec.Layer{{
					TransformID: "pts", Placement: placement, Renderer: "dots",
				}},
			}},
			InitialCanvas: "main",
			InitialX:      d.CanvasW / 2, InitialY: d.CanvasH / 2,
			ViewportW: cfg.ViewportW, ViewportH: cfg.ViewportH,
		}
		ca, err := spec.Compile(app, reg)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := fetch.Materialize(context.Background(), db, ca, 0, 0, fetch.Options{BuildSpatial: true}); err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		t.Set(label, "precompute time", elapsed, Series{Scheme: label})
		return nil
	}
	regSep := spec.NewRegistry()
	regSep.RegisterRenderer("dots")
	if err := run("separable (skip precompute)",
		&spec.Placement{XCol: "x", YCol: "y", Radius: cfg.Radius}, regSep); err != nil {
		return nil, err
	}
	regFn := spec.NewRegistry()
	regFn.RegisterRenderer("dots")
	regFn.RegisterPlacement("xyPlacement", placementXY(cfg.Radius))
	if err := run("non-separable (materialize)",
		&spec.Placement{Func: "xyPlacement"}, regFn); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("n=%d; identical placement, two physical strategies", cfg.NumPoints))
	return t, nil
}

// placementXY builds the functional twin of the separable x/y
// placement: identical geometry, forced through the materialize path.
func placementXY(radius float64) spec.PlacementFunc {
	return func(row storage.Row) geom.Rect {
		return geom.RectAround(geom.Point{X: row[1].AsFloat(), Y: row[2].AsFloat()}, radius)
	}
}

// loadPoints bulk-inserts a dataset into the points table.
func loadPoints(db *sqldb.DB, d *workload.Dataset) error {
	for i := range d.Points {
		p := &d.Points[i]
		if err := db.InsertRow("points", storage.Row{
			storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
		}); err != nil {
			return err
		}
	}
	return nil
}

// AblationCodec compares the JSON and binary wire codecs on a dbox
// trace (server-side serialization hygiene, §3.2; A5).
func AblationCodec(env *Env) (*Table, error) {
	traces := workload.PaperTraces(env.Dataset, 1024, env.Cfg.ViewportW, env.Cfg.ViewportH)
	trc := traces[2]
	t := NewTable("Ablation A5: wire codec", "value",
		[]string{"json", "binary"}, []string{"mean ms", "bytes/step"})
	for _, codec := range []server.Codec{server.CodecJSON, server.CodecBinary} {
		env.Srv.BackendCache().Clear()
		c, err := frontend.NewClient(env.BaseURL, env.CA, frontend.Options{
			Scheme: fetch.DBoxExact, Codec: codec, CacheBytes: env.Cfg.FrontendCacheBytes,
		})
		if err != nil {
			return nil, err
		}
		if _, err := c.Pan(trc.Steps[0]); err != nil {
			return nil, err
		}
		var sumMs, bytes float64
		for _, step := range trc.Steps[1:] {
			rep, err := c.Pan(step)
			if err != nil {
				return nil, err
			}
			sumMs += float64(rep.Duration.Microseconds()) / 1000
			bytes += float64(rep.Bytes)
		}
		n := float64(trc.NumPans())
		s := Series{Scheme: string(codec), Trace: trc.Name, MeanMs: sumMs / n}
		t.Set(string(codec), "mean ms", s.MeanMs, s)
		t.Set(string(codec), "bytes/step", bytes/n, s)
	}
	return t, nil
}
