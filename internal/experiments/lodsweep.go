package experiments

import (
	"fmt"

	"kyrix/internal/fetch"
	"kyrix/internal/frontend"
)

// LODSweepOptions configures LODSweep.
type LODSweepOptions struct {
	// Base sizes the smallest environment; LOD sets its lod knob.
	Base Config
	// ScaleFactors multiply Base.NumPoints per measured row (nil =
	// {1, 10}: the 10x growth the bounded-row property is stated over).
	ScaleFactors []int
	// Clients and StepsPerClient drive the zoom workload per row.
	Clients        int
	StepsPerClient int
}

// LODSweep measures the bounded-row property: the same zoom-heavy
// workload replayed against the same canvas at growing dataset sizes.
// Without LOD, rows scanned per step (and latency) grow with the
// dataset, because a zoomed-out viewport covers proportionally more
// raw rows; with "lod": "auto" the pyramid serves zoomed-out windows
// from fixed-size aggregate levels, so both should stay nearly flat.
// Each returned row carries NumPoints so one artifact holds the whole
// growth curve.
func LODSweep(opts LODSweepOptions) ([]ConcurrentRowStats, error) {
	factors := opts.ScaleFactors
	if len(factors) == 0 {
		factors = []int{1, 10}
	}
	clients := opts.Clients
	if clients <= 0 {
		clients = 4
	}
	steps := opts.StepsPerClient
	if steps <= 0 {
		steps = 24
	}
	if opts.Base.LODRowBudget == 0 {
		// A budget below the base viewport's raw row count at the
		// largest scale, so the pyramid bound — not raw serving —
		// dominates every zoom level at every size; with the stock 4096
		// budget the zoomed-in steps serve raw rows that grow with the
		// dataset and drag p50 even though the zoomed-out bound holds.
		opts.Base.LODRowBudget = 512
	}
	var out []ConcurrentRowStats
	for _, f := range factors {
		cfg := opts.Base
		cfg.NumPoints = opts.Base.NumPoints * f
		cfg.Name = fmt.Sprintf("%s-%dx", opts.Base.Name, f)
		// The dynamic-box scheme is the one auto-LOD routes (the
		// tuple–tile mapping design keeps raw rows), so skip the tile
		// mapping precompute entirely: at 10x scale it dominates setup
		// time without being exercised.
		cfg.TileSizes = nil
		env, err := NewEnv(cfg, "uniform")
		if err != nil {
			return nil, err
		}
		_, stats, err := ConcurrentClients(env, ConcurrentOptions{
			ClientCounts:   []int{clients},
			StepsPerClient: steps,
			Scheme:         fetch.DBox50,
			Protocol:       frontend.ProtocolV3,
			Workload:       "zoom",
		})
		env.Close()
		if err != nil {
			return nil, err
		}
		for i := range stats {
			stats[i].NumPoints = cfg.NumPoints
		}
		out = append(out, stats...)
	}
	return out, nil
}
