package experiments

import (
	"testing"

	"kyrix/internal/fetch"
	"kyrix/internal/frontend"
)

// BenchmarkLODZoom replays the zoom-heavy zipf workload with the
// point layer's "lod": "auto" knob off vs on — the bench-regression
// row for the bounded-row property. Alongside time/op it reports
// rows-scanned/op (database rows scanned per pan step) and p50-ms:
// with LOD off, zoomed-out viewports scan rows proportional to the
// dataset; with LOD on they read bounded aggregate levels, so the
// custom metrics should drop sharply and stay flat as the dataset
// grows across PRs.
func BenchmarkLODZoom(b *testing.B) {
	for _, lod := range []bool{false, true} {
		name := map[bool]string{false: "lod=off", true: "lod=on"}[lod]
		b.Run(name, func(b *testing.B) {
			cfg := QuickConfig()
			cfg.Name = "lod-bench"
			cfg.NumPoints = 40_000
			cfg.LOD = lod
			// Only the dynamic-box scheme runs; skip the tile-mapping
			// precompute.
			cfg.TileSizes = nil
			env, err := NewEnv(cfg, "uniform")
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			opts := ConcurrentOptions{
				ClientCounts:   []int{2},
				StepsPerClient: 12,
				Scheme:         fetch.DBox50,
				Protocol:       frontend.ProtocolV3,
				Workload:       "zoom",
			}
			var rowsScanned, p50 float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := ConcurrentClients(env, opts)
				if err != nil {
					b.Fatal(err)
				}
				rowsScanned += stats[0].RowsScannedPerStep
				p50 += stats[0].P50Ms
			}
			b.StopTimer()
			b.ReportMetric(rowsScanned/float64(b.N), "rows-scanned/op")
			b.ReportMetric(p50/float64(b.N), "p50-ms")
		})
	}
}
