package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/frontend"
	"kyrix/internal/workload"
)

// Restart experiment: the persistent tile store's (L2's) reason to
// exist, measured end to end. A backend serves a zipf hot set cold,
// shuts down (draining the write-behind queue), and a fresh process —
// empty L1, re-run precompute — comes back over the same L2 directory
// and replays the same hot set. With L2 enabled the restarted node
// answers from checksummed disk records instead of the database; the
// headline metrics are database queries to warm and the p50 of the
// first hundred steps, the window a user staring at a rebooted
// dashboard actually feels.

// RestartOptions configures a cold-start/restart measurement.
type RestartOptions struct {
	// Steps is the number of measured zipf pan steps per phase.
	Steps int
	// Scheme is the fetching granularity (default tile spatial 1024).
	Scheme fetch.Granularity
	// BatchSize batches tile requests (0 disables).
	BatchSize int
	// L2Dir enables the persistent store at that directory for both
	// phases; empty runs the no-L2 baseline (the restart phase is then
	// a second cold start).
	L2Dir string
}

// DefaultRestartOptions replays 100 zipf steps — the "first 100 steps
// after reboot" window — over spatial 1024 tiles with batching.
func DefaultRestartOptions(l2dir string) RestartOptions {
	return RestartOptions{
		Steps:     100,
		Scheme:    fetch.TileSpatial1024,
		BatchSize: 8,
		L2Dir:     l2dir,
	}
}

// RestartPhase is one boot's measurements.
type RestartPhase struct {
	// Phase is "first-boot" or "restart".
	Phase string `json:"phase"`
	// DBQueriesToWarm is how many database queries the phase's replay
	// issued — the cost of warming this boot.
	DBQueriesToWarm int64 `json:"dbQueriesToWarm"`
	// P50FirstStepsMs is the median response time over the first
	// min(100, Steps) pan steps.
	P50FirstStepsMs float64 `json:"p50FirstStepsMs"`
	// MeanMs averages all measured steps.
	MeanMs float64 `json:"meanMs"`
	// L2Hits / L2Keys are the persistent store's counters after the
	// replay (0 when L2 is disabled).
	L2Hits int64 `json:"l2Hits"`
	L2Keys int64 `json:"l2Keys"`
	// Steps is the measured step count.
	Steps int `json:"steps"`
}

// RestartResult is a whole restart experiment — what kyrix-bench
// -restart persists as BENCH_restart_*.json.
type RestartResult struct {
	Config string         `json:"config"`
	L2     bool           `json:"l2"`
	Phases []RestartPhase `json:"phases"`
}

// Format renders the result as an aligned comparison table.
func (r *RestartResult) Format() string {
	tier := "no L2 (baseline)"
	if r.L2 {
		tier = "persistent L2"
	}
	out := fmt.Sprintf("Restart cold-start: %s over %q\n", tier, r.Config)
	out += fmt.Sprintf("  %-12s %14s %18s %10s %8s\n", "phase", "dbq-to-warm", "p50-first-steps", "mean ms", "l2 hits")
	for _, p := range r.Phases {
		out += fmt.Sprintf("  %-12s %14d %15.2fms %10.2f %8d\n",
			p.Phase, p.DBQueriesToWarm, p.P50FirstStepsMs, p.MeanMs, p.L2Hits)
	}
	return out
}

// restartTrace is the shared zipf hot set both phases replay: same
// layout, same visit order, so the restarted node is asked exactly
// what the first boot persisted.
func restartTrace(cfg Config, d *workload.Dataset, steps int) *workload.Trace {
	return workload.ZipfHotSetTrace(workload.ZipfOptions{
		Canvas:   d.Canvas(),
		TileSize: cfg.ViewportW,
		HotSpots: 64, Skew: 1.2,
		Steps: steps,
		VpW:   cfg.ViewportW, VpH: cfg.ViewportH,
		LayoutSeed: 7, Seed: 1000,
	})
}

// replayPhase drives the trace through a fresh frontend (frontend
// cache off — the backend tiers are what is measured) and snapshots
// the phase's counters.
func replayPhase(env *Env, opts RestartOptions, tr *workload.Trace, phase string) (RestartPhase, error) {
	p := RestartPhase{Phase: phase}
	c, err := frontend.NewClient(env.BaseURL, env.CA, frontend.Options{
		Scheme:    opts.Scheme,
		Codec:     env.Cfg.Codec,
		BatchSize: opts.BatchSize,
	})
	if err != nil {
		return p, err
	}
	dbqBefore := env.Srv.Stats.DBQueries.Load()
	var durs []float64
	for _, step := range tr.Steps {
		start := time.Now()
		if _, err := c.Pan(step); err != nil {
			return p, err
		}
		durs = append(durs, float64(time.Since(start).Microseconds())/1000)
	}
	p.Steps = len(durs)
	p.DBQueriesToWarm = env.Srv.Stats.DBQueries.Load() - dbqBefore
	var sum float64
	for _, d := range durs {
		sum += d
	}
	p.MeanMs = sum / float64(len(durs))
	first := durs
	if len(first) > 100 {
		first = first[:100]
	}
	sorted := append([]float64(nil), first...)
	sort.Float64s(sorted)
	p.P50FirstStepsMs = sorted[int(math.Ceil(0.50*float64(len(sorted))))-1]
	if l2 := env.Srv.L2(); l2 != nil {
		snap := l2.Snapshot()
		p.L2Hits = snap.Hits
		p.L2Keys = int64(snap.Keys)
	}
	return p, nil
}

// RestartExperiment measures the two boots. Phase 1 ("first-boot")
// serves the zipf trace cold and shuts the environment down — the
// drain on Close is part of what is under test. Phase 2 ("restart")
// rebuilds everything from scratch (fresh embedded DB, re-run
// precompute, empty L1) over the same L2 directory and replays the
// identical trace.
func RestartExperiment(cfg Config, opts RestartOptions) (*RestartResult, error) {
	if opts.Steps <= 0 {
		opts.Steps = 100
	}
	if opts.Scheme.Kind == "" {
		opts.Scheme = fetch.TileSpatial1024
	}
	cfg.L2Dir = opts.L2Dir
	cfg.FrontendCacheBytes = 0
	d := workload.Uniform(cfg.NumPoints, cfg.CanvasW, cfg.CanvasH, cfg.Seed)
	tr := restartTrace(cfg, d, opts.Steps)
	res := &RestartResult{Config: cfg.Name, L2: opts.L2Dir != ""}

	env, err := NewEnvFor(cfg, d)
	if err != nil {
		return nil, err
	}
	p1, err := replayPhase(env, opts, tr, "first-boot")
	env.Close()
	if err != nil {
		return nil, err
	}
	res.Phases = append(res.Phases, p1)

	env2, err := NewEnvFor(cfg, d)
	if err != nil {
		return nil, err
	}
	defer env2.Close()
	p2, err := replayPhase(env2, opts, tr, "restart")
	if err != nil {
		return nil, err
	}
	res.Phases = append(res.Phases, p2)
	return res, nil
}
