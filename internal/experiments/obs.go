package experiments

import (
	"fmt"
	"net/http"

	"kyrix/internal/obs"
)

// StageHistogram is the server's per-stage latency histogram family
// (internal/server mirrors this name; redeclared here so experiments
// does not import server for one constant).
const StageHistogram = "kyrix_stage_duration_seconds"

// ScrapeStages GETs baseURL/metrics and folds the per-stage latency
// histograms into quantiles keyed by stage name ("item", "db.query",
// "peer.fetch", ...). It goes over HTTP on purpose: the scrape
// exercises the same surface an operator's Prometheus would, so a
// bench run doubles as an exposition-format regression check.
func ScrapeStages(baseURL string) (map[string]obs.StageQuantiles, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("experiments: scrape /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("experiments: scrape /metrics: %s", resp.Status)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("experiments: parse /metrics: %w", err)
	}
	return exp.HistogramQuantiles(StageHistogram, "stage"), nil
}
