package experiments

import (
	"testing"

	"kyrix/internal/fetch"
)

// TestObsSmoke is the CI obs-smoke check behind the experiments
// harness: run a small concurrent sweep, scrape /metrics over HTTP,
// and require the stage breakdown to account for the traffic just
// served. It guards the whole chain — histograms observed on the
// serving path, exposition rendering, and the parse/quantile fold
// kyrix-bench embeds in its artifacts.
func TestObsSmoke(t *testing.T) {
	env, _ := quickEnvs(t)
	opts := ConcurrentOptions{
		ClientCounts:   []int{2},
		StepsPerClient: 4,
		Scheme:         fetch.TileSpatial1024,
		BatchSize:      8,
	}
	if _, _, err := ConcurrentClients(env, opts); err != nil {
		t.Fatal(err)
	}
	stages, err := ScrapeStages(env.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	// Every registered stage series appears (zero-count ones included:
	// the exposition declares the full family), and the ones the sweep
	// exercised have real observations.
	for _, stage := range []string{"batch", "item", "db.query", "flush"} {
		q, ok := stages[stage]
		if !ok {
			t.Fatalf("stage %q missing from scrape (have %v)", stage, stages)
		}
		if q.Count == 0 {
			t.Fatalf("stage %q has no observations after the sweep", stage)
		}
		if q.P95Ms < q.P50Ms {
			t.Fatalf("stage %q quantiles inverted: %+v", stage, q)
		}
	}
	if _, ok := stages["peer.fetch"]; !ok {
		t.Fatal("unexercised stages must still be declared in the exposition")
	}
}
