// Package experiments is the harness that regenerates the paper's
// evaluation (§3.3, Figures 6 and 7) and the ablations DESIGN.md
// derives from the paper's prose. It loads a synthetic dataset into the
// embedded DBMS, performs the precomputation of both database designs,
// starts a real backend over loopback HTTP, replays the viewport
// traces of Fig. 5 through a frontend client under each fetching
// scheme, and aggregates per-step response times exactly as the paper
// reports them ("the average response time (per step) of all fetching
// schemes on three traces", averaged over 3 runs).
package experiments

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/frontend"
	"kyrix/internal/server"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

// Config sizes one experiment environment. The zero value is unusable;
// start from DefaultConfig, QuickConfig or PaperConfig.
type Config struct {
	// Name labels the config in reports.
	Name string
	// NumPoints is the dataset size (the paper: 100M).
	NumPoints int
	// CanvasW, CanvasH are the canvas extent (the paper: 1M × 0.1M).
	CanvasW, CanvasH float64
	// ViewportW, ViewportH are the frontend viewport (1024² so traces
	// align with the 1024 tile size, per Fig. 5).
	ViewportW, ViewportH float64
	// TileSizes are the static tile sizes to precompute and test.
	TileSizes []float64
	// Runs averages each series over this many runs (the paper: 3).
	Runs int
	// Seed fixes the dataset generator.
	Seed int64
	// Radius is the rendered half-extent of each dot ("we assume
	// records are generally rendered bigger than a single pixel").
	Radius float64
	// FrontendCacheBytes / BackendCacheBytes size the two caches.
	FrontendCacheBytes int64
	BackendCacheBytes  int64
	// CacheAdmission selects the backend cache admission policy
	// ("lfu" = W-TinyLFU frequency-based admission, "off"/"" = plain
	// sharded LRU) — the comparison axis for the zipf/scan workloads.
	CacheAdmission string
	// Codec is the wire encoding.
	Codec server.Codec
	// LOD declares the point layer "lod": "auto", so precompute builds
	// the aggregation pyramid and zoomed-out windows serve aggregate
	// cells — the comparison axis for the zoom workload.
	LOD bool
	// LODRowBudget bounds the rows any window query returns on the
	// auto-LOD layer (0 = the fetch package default).
	LODRowBudget int
	// L2Dir, when non-empty, enables the persistent tile store (the
	// on-disk L2 under the backend cache) at that directory — the knob
	// behind the restart/cold-start experiments.
	L2Dir string
	// L2MaxBytes bounds the persistent store (0 = store default).
	L2MaxBytes int64
	// ReplogRoot, when non-empty, gives every cluster node a replicated
	// update log under <ReplogRoot>/node<i> — /update becomes a
	// quorum-committed log command and the chaos/failover experiments
	// can kill and restart nodes without losing acknowledged updates.
	ReplogRoot string
}

// DefaultConfig is the laptop-scale mapping of the paper's setup
// documented in DESIGN.md §5: same density proportions at 1/100 the
// row count.
func DefaultConfig() Config {
	return Config{
		Name:               "default",
		NumPoints:          1_000_000,
		CanvasW:            131072,
		CanvasH:            16384,
		ViewportW:          1024,
		ViewportH:          1024,
		TileSizes:          []float64{256, 1024, 4096},
		Runs:               3,
		Seed:               2019,
		Radius:             1,
		FrontendCacheBytes: 256 << 20,
		BackendCacheBytes:  256 << 20,
		Codec:              server.CodecJSON,
	}
}

// QuickConfig is a CI-sized config for tests.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Name = "quick"
	cfg.NumPoints = 120_000
	cfg.CanvasW = 32768
	cfg.CanvasH = 16384
	cfg.Runs = 1
	return cfg
}

// PaperConfig is the paper's full scale (100M dots on a 1M×0.1M
// canvas). Building it takes a long time and tens of GB of memory; it
// exists so the mapping to the original numbers is explicit.
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.Name = "paper"
	cfg.NumPoints = 100_000_000
	cfg.CanvasW = 1_000_000
	cfg.CanvasH = 100_000
	return cfg
}

// Env is one loaded dataset with a running backend.
type Env struct {
	Cfg     Config
	Dataset *workload.Dataset
	DB      *sqldb.DB
	CA      *spec.CompiledApp
	Srv     *server.Server
	BaseURL string

	ln   net.Listener
	hsrv *http.Server
	// PrecomputeTime is how long loading + index/mapping builds took.
	PrecomputeTime time.Duration
}

// pointColumns is the record-table schema of §3.1: raw attributes plus
// the auto-increment tuple id.
var pointColumns = []spec.ColumnSpec{
	{Name: "id", Type: "int"},
	{Name: "x", Type: "double"},
	{Name: "y", Type: "double"},
	{Name: "val", Type: "double"},
}

// NewEnv loads dataset (built if nil from cfg via kind "uniform" or
// "skewed"), precomputes both database designs, and starts the backend.
func NewEnv(cfg Config, kind string) (*Env, error) {
	var d *workload.Dataset
	switch kind {
	case "uniform":
		d = workload.Uniform(cfg.NumPoints, cfg.CanvasW, cfg.CanvasH, cfg.Seed)
	case "skewed":
		d = workload.Skewed(cfg.NumPoints, cfg.CanvasW, cfg.CanvasH, cfg.Seed)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset kind %q", kind)
	}
	return NewEnvFor(cfg, d)
}

// NewEnvFor builds an environment over an existing dataset.
func NewEnvFor(cfg Config, d *workload.Dataset) (*Env, error) {
	return newEnv(cfg, d, server.ClusterOptions{}, nil)
}

// newEnv is the shared constructor: standalone envs pass a zero
// ClusterOptions and a nil listener; cluster nodes pass their
// membership and the pre-created listener their Self URL names (the
// ring needs every node's address before any server exists).
func newEnv(cfg Config, d *workload.Dataset, copts server.ClusterOptions, ln net.Listener) (*Env, error) {
	start := time.Now()
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		return nil, err
	}
	for i := range d.Points {
		p := &d.Points[i]
		if err := db.InsertRow("points", storage.Row{
			storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
		}); err != nil {
			return nil, err
		}
	}
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &spec.App{
		Name: "experiment",
		Canvases: []spec.Canvas{{
			ID: "main", W: d.CanvasW, H: d.CanvasH,
			Transforms: []spec.Transform{{
				ID: "pts", Query: "SELECT * FROM points", Columns: pointColumns,
			}},
			Layers: []spec.Layer{{
				TransformID: "pts",
				Placement:   &spec.Placement{XCol: "x", YCol: "y", Radius: cfg.Radius},
				Renderer:    "dots",
				LOD:         lodKnob(cfg.LOD),
			}},
		}},
		InitialCanvas: "main",
		InitialX:      d.CanvasW / 2, InitialY: d.CanvasH / 2,
		ViewportW: cfg.ViewportW, ViewportH: cfg.ViewportH,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(db, ca, server.Options{
		Cache: server.CacheOptions{
			L1: server.L1CacheOptions{
				Bytes:     cfg.BackendCacheBytes,
				Admission: cfg.CacheAdmission,
			},
			L2: server.L2CacheOptions{
				Path:     cfg.L2Dir,
				MaxBytes: cfg.L2MaxBytes,
			},
		},
		Cluster: copts,
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    cfg.TileSizes,
			MappingIndex: sqldb.IndexBTree,
			LODRowBudget: cfg.LODRowBudget,
		},
	})
	if err != nil {
		return nil, err
	}
	env := &Env{Cfg: cfg, Dataset: d, DB: db, CA: ca, Srv: srv}
	env.PrecomputeTime = time.Since(start)
	if err := env.serve(ln); err != nil {
		return nil, err
	}
	return env, nil
}

func lodKnob(on bool) string {
	if on {
		return "auto"
	}
	return ""
}

// serve starts the HTTP side on ln (created here when nil).
func (e *Env) serve(ln net.Listener) error {
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("experiments: listen: %w", err)
		}
	}
	e.ln = ln
	e.hsrv = &http.Server{Handler: e.Srv.Handler()}
	go func() { _ = e.hsrv.Serve(ln) }()
	e.BaseURL = "http://" + ln.Addr().String()
	return nil
}

// Close shuts the backend down: stop accepting, give in-flight
// requests (streaming /batch responses, peer fills this node is
// serving) a bounded grace to drain, then force-close the stragglers.
// The listener is released explicitly too (Shutdown only knows
// listeners its Serve goroutine already registered).
func (e *Env) Close() {
	if e.hsrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := e.hsrv.Shutdown(ctx); err != nil {
			_ = e.hsrv.Close()
		}
		cancel()
		e.hsrv = nil
	}
	if e.ln != nil {
		_ = e.ln.Close()
		e.ln = nil
	}
	// Last, the server itself: this drains the persistent store's
	// write-behind queue to disk, so fills from the final pan steps are
	// readable after a reopen over the same L2 directory.
	if e.Srv != nil {
		_ = e.Srv.Close()
	}
}

// Series is one (scheme, trace) measurement: the paper's unit of
// reporting in Figures 6–7.
type Series struct {
	Scheme string
	Trace  string
	// MeanMs is the average response time per pan step across runs.
	MeanMs float64
	// StdMs is the standard deviation across all measured steps.
	StdMs float64
	// RequestsPerStep and RowsPerStep are fetch-volume diagnostics
	// (they explain *why* the times order the way they do).
	RequestsPerStep float64
	RowsPerStep     float64
	// InitialLoadMs is the (unmeasured-by-the-paper) first load.
	InitialLoadMs float64
	// OverBudget counts steps that broke the 500 ms budget.
	OverBudget int
}

// RunScheme replays trace under scheme cfg.Runs times with a fresh
// frontend each run (cold frontend cache, cold dynamic box), clearing
// the backend cache between runs so runs are independent samples, and
// aggregates the pan-step response times. The initial load (Steps[0])
// is reported separately and excluded from the mean, matching the
// paper's per-pan-step metric.
func (e *Env) RunScheme(g fetch.Granularity, tr *workload.Trace) (Series, error) {
	s := Series{Scheme: g.Name(), Trace: tr.Name}
	var durs []float64
	var reqs, rows, loads float64
	for run := 0; run < e.Cfg.Runs; run++ {
		e.Srv.BackendCache().Clear()
		c, err := frontend.NewClient(e.BaseURL, e.CA, frontend.Options{
			Scheme:     g,
			Codec:      e.Cfg.Codec,
			CacheBytes: e.Cfg.FrontendCacheBytes,
		})
		if err != nil {
			return s, err
		}
		if _, err := c.Pan(tr.Steps[0]); err != nil {
			return s, err
		}
		loads += float64(c.TotalReports[0].Duration.Microseconds()) / 1000
		for _, step := range tr.Steps[1:] {
			rep, err := c.Pan(step)
			if err != nil {
				return s, err
			}
			durs = append(durs, float64(rep.Duration.Microseconds())/1000)
			reqs += float64(rep.Requests)
			rows += float64(rep.Rows)
			if rep.OverBudget {
				s.OverBudget++
			}
		}
	}
	n := float64(len(durs))
	if n == 0 {
		return s, fmt.Errorf("experiments: trace %q has no pan steps", tr.Name)
	}
	var sum float64
	for _, d := range durs {
		sum += d
	}
	s.MeanMs = sum / n
	var varsum float64
	for _, d := range durs {
		varsum += (d - s.MeanMs) * (d - s.MeanMs)
	}
	s.StdMs = math.Sqrt(varsum / n)
	s.RequestsPerStep = reqs / n
	s.RowsPerStep = rows / n
	s.InitialLoadMs = loads / float64(e.Cfg.Runs)
	return s, nil
}

// Table is a formatted experiment result: scheme rows × trace columns.
type Table struct {
	Title  string
	Cols   []string
	Rows   []string
	Cells  [][]float64 // [row][col], NaN = missing
	Unit   string
	Notes  []string
	series map[string]Series // "row/col" -> full series
}

// NewTable allocates a rows×cols table.
func NewTable(title, unit string, rows, cols []string) *Table {
	t := &Table{Title: title, Unit: unit, Cols: cols, Rows: rows,
		series: map[string]Series{}}
	t.Cells = make([][]float64, len(rows))
	for i := range t.Cells {
		t.Cells[i] = make([]float64, len(cols))
		for j := range t.Cells[i] {
			t.Cells[i][j] = math.NaN()
		}
	}
	return t
}

// Set stores a cell (and its backing series for diagnostics).
func (t *Table) Set(row, col string, v float64, s Series) {
	ri, ci := indexOf(t.Rows, row), indexOf(t.Cols, col)
	if ri < 0 || ci < 0 {
		return
	}
	t.Cells[ri][ci] = v
	t.series[row+"/"+col] = s
}

// Get fetches a cell by labels (NaN when missing).
func (t *Table) Get(row, col string) float64 {
	ri, ci := indexOf(t.Rows, row), indexOf(t.Cols, col)
	if ri < 0 || ci < 0 {
		return math.NaN()
	}
	return t.Cells[ri][ci]
}

// Series fetches the full measurement behind a cell.
func (t *Table) Series(row, col string) (Series, bool) {
	s, ok := t.series[row+"/"+col]
	return s, ok
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// Format renders the table as aligned text, the cmd/kyrix-bench
// output.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s)\n", t.Title, t.Unit)
	width := 0
	for _, r := range t.Rows {
		if len(r) > width {
			width = len(r)
		}
	}
	fmt.Fprintf(&sb, "%-*s", width+2, "")
	for _, c := range t.Cols {
		fmt.Fprintf(&sb, "%12s", c)
	}
	sb.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", width+2, r)
		for j := range t.Cols {
			v := t.Cells[i][j]
			if math.IsNaN(v) {
				fmt.Fprintf(&sb, "%12s", "-")
			} else {
				fmt.Fprintf(&sb, "%12.2f", v)
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// SortedSchemeNames returns the paper-legend scheme names.
func SortedSchemeNames() []string {
	var names []string
	for _, g := range fetch.PaperSchemes() {
		names = append(names, g.Name())
	}
	return names
}

// best returns the row label with the smallest mean across columns.
func (t *Table) best() string {
	bestRow, bestVal := "", math.Inf(1)
	for i, r := range t.Rows {
		var sum float64
		var n int
		for _, v := range t.Cells[i] {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		if n == 0 {
			continue
		}
		if avg := sum / float64(n); avg < bestVal {
			bestVal, bestRow = avg, r
		}
	}
	return bestRow
}

// Shape checks — the qualitative claims of §3.3's Results list,
// verified by tests and printed by the bench tool.

// ShapeReport compares the measured table against the paper's
// qualitative claims and returns one line per claim.
func ShapeReport(uniform, skewed *Table) []string {
	var out []string
	check := func(name string, ok bool) {
		status := "HOLDS"
		if !ok {
			status = "VIOLATED"
		}
		out = append(out, fmt.Sprintf("[%s] %s", status, name))
	}
	// (1) Dbox has the best overall performance on both datasets.
	check("dbox best overall on Uniform", uniform.best() == "dbox")
	check("dbox best overall on Skewed", skewed.best() == "dbox")
	// (2) Tile 1024 spatial is competitive on trace-a, even better
	// than dbox 50%.
	check("tile spatial 1024 beats dbox 50% on trace-a (Uniform)",
		uniform.Get("tile spatial 1024", "trace-a") < uniform.Get("dbox 50%", "trace-a"))
	// (3) Tile 4096 and 256 spatial have the worst performances.
	worstTwo := func(t *Table) []string {
		type rv struct {
			row string
			avg float64
		}
		var rvs []rv
		for i, r := range t.Rows {
			var sum float64
			var n int
			for _, v := range t.Cells[i] {
				if !math.IsNaN(v) {
					sum += v
					n++
				}
			}
			rvs = append(rvs, rv{r, sum / float64(n)})
		}
		sort.Slice(rvs, func(i, j int) bool { return rvs[i].avg > rvs[j].avg })
		return []string{rvs[0].row, rvs[1].row}
	}
	wu := worstTwo(uniform)
	isExtreme := func(name string) bool {
		return strings.Contains(name, "256") || strings.Contains(name, "4096")
	}
	check("worst two schemes are extreme tile sizes (Uniform)",
		isExtreme(wu[0]) && isExtreme(wu[1]))
	// (4) Skewed is slower than Uniform overall (dense hot region).
	var su, ss float64
	var nu, ns int
	for i := range uniform.Rows {
		for j := range uniform.Cols {
			if !math.IsNaN(uniform.Cells[i][j]) {
				su += uniform.Cells[i][j]
				nu++
			}
			if !math.IsNaN(skewed.Cells[i][j]) {
				ss += skewed.Cells[i][j]
				ns++
			}
		}
	}
	check("Skewed slower than Uniform overall", ss/float64(ns) > su/float64(nu))
	return out
}
