package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"kyrix/internal/cache"
	"kyrix/internal/fetch"
	"kyrix/internal/frontend"
	"kyrix/internal/geom"
	"kyrix/internal/spec"
	"kyrix/internal/workload"
)

// ConcurrentOptions configures a concurrent-clients run.
type ConcurrentOptions struct {
	// ClientCounts are the parallel-frontend counts to sweep.
	ClientCounts []int
	// StepsPerClient is the pan steps each client replays (excluding
	// the initial load).
	StepsPerClient int
	// Scheme is the fetching granularity every client uses.
	Scheme fetch.Granularity
	// BatchSize is each client's tile-batching knob (tiles schemes
	// only; 0 disables).
	BatchSize int
	// Protocol selects the /batch wire protocol
	// (frontend.ProtocolAuto/V1/V2/V3): the protocol comparison axis
	// for wire bytes, compression ratio and time-to-first-frame.
	Protocol int
	// Compression selects v3 per-frame compression
	// (frontend.CompressionAuto/Off).
	Compression int
	// SharedTraces groups clients onto this many distinct traces, so
	// concurrent clients overlap and request coalescing has identical
	// in-flight requests to merge. 0 means every client gets its own
	// trace (no overlap). Random-walk workload only.
	SharedTraces int
	// Workload selects each client's trace shape:
	//
	//	"walk" (or "")  random-walk pans — the historical default
	//	"zipf"          zipf-hot-set pan/zoom: all clients share one
	//	                hot-spot layout and revisit it with zipf skew
	//	"scan"          one-shot sequential scan of the canvas
	//	"mixed"         3 of every 4 clients run zipf, the fourth runs
	//	                a scan — the adversarial multi-tenant case the
	//	                cache admission policy exists for
	//	"zoom"          zipf-zoom: clients zoom in and out around shared
	//	                zipf-hot centers — the zoom-heavy case auto-LOD
	//	                serving exists for
	//
	// The zipf/scan/mixed/zoom workloads disable the frontend cache so
	// the backend cache sees the full request stream (the hit-ratio
	// column measures the backend policy, not the client's cache).
	Workload string
}

// DefaultConcurrentOptions sweeps 1..16 clients replaying tile fetches
// with batching, with clients paired onto shared traces.
func DefaultConcurrentOptions() ConcurrentOptions {
	return ConcurrentOptions{
		ClientCounts:   []int{1, 2, 4, 8, 16},
		StepsPerClient: 12,
		Scheme:         fetch.TileSpatial1024,
		BatchSize:      8,
		SharedTraces:   4,
	}
}

// ConcurrentRowStats is one client-count row of the concurrent sweep
// in machine-readable form — what kyrix-bench -json persists so the
// perf trajectory is comparable across PRs.
type ConcurrentRowStats struct {
	Clients     int     `json:"clients"`
	StepsPerSec float64 `json:"stepsPerSec"`
	MeanMs      float64 `json:"meanMs"`
	P50Ms       float64 `json:"p50Ms"`
	P95Ms       float64 `json:"p95Ms"`
	DbqPerStep  float64 `json:"dbqPerStep"`
	CoalPerStep float64 `json:"coalPerStep"`
	// WireKBPerStep is bytes read off the wire by batch round trips
	// per measured step; TtffMs the mean time to first decoded frame
	// (framed protocols only).
	WireKBPerStep float64 `json:"wireKBPerStep"`
	TtffMs        float64 `json:"ttffMs"`
	// CompressionRatio is wire bytes over logical payload bytes across
	// the measured steps: ~1 on v2 (framing only), below 1 when v3's
	// compression and delta frames earn their keep. 0 when unbatched.
	CompressionRatio float64 `json:"compressionRatio"`
	// HitRatio is the backend cache hit ratio over the measured steps
	// (hits/(hits+misses) deltas); CacheAdmitted/CacheRejected count
	// the W-TinyLFU admission gate's decisions in that window (both 0
	// with admission off).
	HitRatio      float64 `json:"hitRatio"`
	CacheAdmitted int64   `json:"cacheAdmitted"`
	CacheRejected int64   `json:"cacheRejected"`
	// RowsScannedPerStep is database rows scanned per measured step —
	// the bounded-row metric for auto-LOD runs: with LOD on it should
	// stay flat as NumPoints grows; without it it grows linearly.
	RowsScannedPerStep float64 `json:"rowsScannedPerStep,omitempty"`
	// NumPoints records the dataset size behind the row (LODSweep runs
	// several sizes in one artifact); 0 when the caller didn't vary it.
	NumPoints int `json:"numPoints,omitempty"`
	// Nodes carries per-node counters in cluster runs (ClusterRun);
	// empty for single-backend sweeps. In cluster rows, DbqPerStep /
	// HitRatio above are the cluster-wide aggregates.
	Nodes []NodeRowStats `json:"nodes,omitempty"`
}

// NodeRowStats is one cluster node's share of a concurrent-sweep row.
type NodeRowStats struct {
	// Node is the node's base URL (its ring identity).
	Node string `json:"node"`
	// HitRatio is this node's backend-cache hit ratio over the
	// measured steps.
	HitRatio float64 `json:"hitRatio"`
	// PeerFillRatio is peer fills / (peer fills + local database
	// queries) — the fraction of this node's cache fills served by
	// the owning peer instead of its own database.
	PeerFillRatio float64 `json:"peerFillRatio"`
	// DbqPerStep is this node's database queries per measured step
	// (cluster-wide steps, so the per-node columns sum to the row's
	// aggregate DbqPerStep).
	DbqPerStep float64 `json:"dbqPerStep"`
	// PeerFills/PeerServes/LocalFallbacks/HotReplicas are the raw
	// cluster counters over the measured window.
	PeerFills      int64 `json:"peerFills"`
	PeerServes     int64 `json:"peerServes"`
	LocalFallbacks int64 `json:"localFallbacks"`
	HotReplicas    int64 `json:"hotReplicas"`
}

// ConcurrentClients measures the backend under N parallel frontends:
// the throughput/latency sweep behind the ROADMAP's "heavy traffic"
// goal, and the ablation surface for the serving pipeline (sharded
// cache, coalescing, batching, wire protocol). Each client replays a
// random-walk trace; clients sharing a trace issue identical requests
// and exercise coalescing. The backend cache is cleared before each
// client count so rows are comparable cold starts. Returns the
// formatted table plus per-row machine-readable stats.
func ConcurrentClients(env *Env, opts ConcurrentOptions) (*Table, []ConcurrentRowStats, error) {
	if len(opts.ClientCounts) == 0 || opts.StepsPerClient <= 0 {
		return nil, nil, fmt.Errorf("experiments: concurrent run needs client counts and steps")
	}
	rows := make([]string, len(opts.ClientCounts))
	for i, n := range opts.ClientCounts {
		rows[i] = fmt.Sprintf("%d clients", n)
	}
	workloadName := opts.Workload
	if workloadName == "" {
		workloadName = "walk"
	}
	cols := []string{"steps/s", "mean ms", "p95 ms", "dbq/step", "coal/step", "hit%", "wireKB/step", "ttff ms", "ratio"}
	t := NewTable(
		fmt.Sprintf("Concurrent clients: %s over %q (%s workload)", opts.Scheme.Name(), env.Cfg.Name, workloadName),
		"mixed units, see columns", rows, cols)
	t.Notes = append(t.Notes,
		fmt.Sprintf("steps/client=%d batch=%d proto=%s sharedTraces=%d; backend cache cleared per row",
			opts.StepsPerClient, opts.BatchSize, protoName(opts.Protocol), opts.SharedTraces),
		"hit%: backend cache hit ratio over the measured steps (zipf/scan/mixed workloads disable the frontend cache so the backend policy is what is measured)",
		"wireKB/step: bytes read off the wire by batch round trips (v1 counts the base64 JSON envelope, v2/v3 the framed stream); 0 when unbatched",
		"ttff ms: mean time to first decoded frame, framed streaming only",
		"ratio: wire bytes / logical payload bytes (v3 compression + delta savings; ~1 on v2)")

	var stats []ConcurrentRowStats
	for _, n := range opts.ClientCounts {
		row := fmt.Sprintf("%d clients", n)
		env.Srv.BackendCache().Clear()

		traces, err := buildTraces(env, opts, n)
		if err != nil {
			return nil, nil, err
		}

		var dbqBefore, coalBefore, scannedBefore int64
		var bcBefore cache.Stats
		sweep, err := runClientSweep(traces, opts, func(i int) (*frontend.Client, error) {
			return newSweepClient(env.BaseURL, env.CA, env.Cfg, opts)
		}, func() {
			dbqBefore = env.Srv.Stats.DBQueries.Load()
			coalBefore = env.Srv.Stats.CoalescedHits.Load()
			scannedBefore = env.DB.Stats().RowsScanned
			bcBefore = env.Srv.BackendCache().Stats()
		})
		if err != nil {
			return nil, nil, err
		}
		dbq := float64(env.Srv.Stats.DBQueries.Load() - dbqBefore)
		coal := float64(env.Srv.Stats.CoalescedHits.Load() - coalBefore)
		scanned := float64(env.DB.Stats().RowsScanned - scannedBefore)
		bcAfter := env.Srv.BackendCache().Stats()
		bcDelta := cache.Stats{
			Hits:   bcAfter.Hits - bcBefore.Hits,
			Misses: bcAfter.Misses - bcBefore.Misses,
		}

		rs := sweep.rowStats(n)
		rs.DbqPerStep = dbq / sweep.steps
		rs.CoalPerStep = coal / sweep.steps
		rs.RowsScannedPerStep = scanned / sweep.steps
		rs.HitRatio = bcDelta.HitRatio()
		rs.CacheAdmitted = bcAfter.Admitted - bcBefore.Admitted
		rs.CacheRejected = bcAfter.Rejected - bcBefore.Rejected
		stats = append(stats, rs)

		t.Set(row, "steps/s", rs.StepsPerSec, Series{})
		t.Set(row, "mean ms", rs.MeanMs, Series{})
		t.Set(row, "p95 ms", rs.P95Ms, Series{})
		t.Set(row, "dbq/step", rs.DbqPerStep, Series{})
		t.Set(row, "coal/step", rs.CoalPerStep, Series{})
		t.Set(row, "hit%", 100*rs.HitRatio, Series{})
		t.Set(row, "wireKB/step", rs.WireKBPerStep, Series{})
		t.Set(row, "ttff ms", rs.TtffMs, Series{})
		t.Set(row, "ratio", rs.CompressionRatio, Series{})
	}
	return t, stats, nil
}

// cacheWorkload reports whether w is one of the backend-cache
// adversaries (which disable the frontend cache).
func cacheWorkload(w string) bool {
	return w == "zipf" || w == "scan" || w == "mixed" || w == "zoom"
}

// newSweepClient builds one sweep client against baseURL with the
// shared option mapping (the zipf/scan/mixed/zoom workloads disable the
// frontend cache: the hit-ratio column measures the backend policy,
// and a frontend cache would absorb the very revisits the zipf
// workload exists to produce).
func newSweepClient(baseURL string, ca *spec.CompiledApp, cfg Config, opts ConcurrentOptions) (*frontend.Client, error) {
	fcache := cfg.FrontendCacheBytes
	if cacheWorkload(opts.Workload) {
		fcache = 0
	}
	return frontend.NewClient(baseURL, ca, frontend.Options{
		Scheme:        opts.Scheme,
		Codec:         cfg.Codec,
		CacheBytes:    fcache,
		BatchSize:     opts.BatchSize,
		BatchProtocol: opts.Protocol,
		Compression:   opts.Compression,
	})
}

// sweepResult aggregates one client-count row of a sweep: the measured
// step durations (sorted), wall time, and wire-side counters.
type sweepResult struct {
	durs       []float64 // sorted, ms
	ttffs      []float64
	wire, raw  int64
	wall       float64
	steps, sum float64
}

// rowStats converts the aggregate into the common ConcurrentRowStats
// fields (latency, throughput, wire); callers fill the server-counter
// fields they snapshot themselves.
func (sr *sweepResult) rowStats(clients int) ConcurrentRowStats {
	var ttffMean float64
	if len(sr.ttffs) > 0 {
		for _, v := range sr.ttffs {
			ttffMean += v
		}
		ttffMean /= float64(len(sr.ttffs))
	}
	var ratio float64
	if sr.raw > 0 {
		ratio = float64(sr.wire) / float64(sr.raw)
	}
	return ConcurrentRowStats{
		Clients:          clients,
		StepsPerSec:      sr.steps / sr.wall,
		MeanMs:           sr.sum / sr.steps,
		P50Ms:            sr.durs[int(math.Ceil(0.50*sr.steps))-1],
		P95Ms:            sr.durs[int(math.Ceil(0.95*sr.steps))-1],
		WireKBPerStep:    float64(sr.wire) / 1024 / sr.steps,
		TtffMs:           ttffMean,
		CompressionRatio: ratio,
	}
}

// runClientSweep is the shared client-driving harness of
// ConcurrentClients and ClusterRun: one goroutine per trace, each
// building its frontend through newClient(i) and replaying Steps[0]
// cold BEFORE the wall clock starts (steps/s measures the measured
// pan steps only, like the per-step figures). snapshot runs after
// every client is ready and before the clock, so callers snapshot
// their server counters without billing the untimed setup phase.
func runClientSweep(traces []*workload.Trace, opts ConcurrentOptions, newClient func(i int) (*frontend.Client, error), snapshot func()) (*sweepResult, error) {
	n := len(traces)
	type result struct {
		durs  []float64 // per-pan-step, ms
		ttffs []float64 // per-step time to first frame, ms (framed only)
		wire  int64     // bytes on the wire across measured steps
		raw   int64     // logical payload bytes across measured steps
		err   error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	var ready sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := newClient(i)
			if err == nil {
				_, err = c.Pan(traces[i].Steps[0])
			}
			results[i].err = err
			ready.Done()
			<-start
			if err != nil {
				return
			}
			for _, step := range traces[i].Steps[1:] {
				rep, err := c.Pan(step)
				if err != nil {
					results[i].err = err
					return
				}
				results[i].durs = append(results[i].durs,
					float64(rep.Duration.Microseconds())/1000)
				results[i].wire += rep.WireBytes
				results[i].raw += rep.Bytes
				if rep.FirstFrame > 0 {
					results[i].ttffs = append(results[i].ttffs,
						float64(rep.FirstFrame.Microseconds())/1000)
				}
			}
		}(i)
	}
	ready.Wait()
	if snapshot != nil {
		snapshot()
	}
	wallStart := time.Now()
	close(start)
	wg.Wait()

	sr := &sweepResult{wall: time.Since(wallStart).Seconds()}
	for i := range results {
		if results[i].err != nil {
			return nil, fmt.Errorf("experiments: client %d: %w", i, results[i].err)
		}
		sr.durs = append(sr.durs, results[i].durs...)
		sr.ttffs = append(sr.ttffs, results[i].ttffs...)
		sr.wire += results[i].wire
		sr.raw += results[i].raw
	}
	sr.steps = float64(len(sr.durs))
	if sr.steps == 0 || sr.wall <= 0 {
		return nil, fmt.Errorf("experiments: sweep measured nothing")
	}
	sort.Float64s(sr.durs)
	for _, d := range sr.durs {
		sr.sum += d
	}
	return sr, nil
}

// buildTraces constructs each client's trace for the selected
// workload. The zipf workload shares one hot-spot layout across
// clients (the multi-tenant skew the admission policy protects);
// scans read windows of one canvas sweep, spaced evenly so the
// windows are disjoint whenever the sweep is long enough — once the
// scanning clients together demand more viewports than one sweep
// holds, the windows wrap and scan traffic stops being strictly
// one-shot (the hit%% column then also reflects scan re-reads); mixed
// gives every fourth client the scan role.
func buildTraces(env *Env, opts ConcurrentOptions, n int) ([]*workload.Trace, error) {
	canvas := env.Dataset.Canvas()
	traces := make([]*workload.Trace, n)
	zipfTrace := func(i int) *workload.Trace {
		return workload.ZipfHotSetTrace(workload.ZipfOptions{
			Canvas:   canvas,
			TileSize: env.Cfg.ViewportW,
			HotSpots: 64, Skew: 1.2,
			Steps: opts.StepsPerClient,
			VpW:   env.Cfg.ViewportW, VpH: env.Cfg.ViewportH,
			LayoutSeed: 7, Seed: 1000 + int64(i),
		})
	}
	var scanFull *workload.Trace
	scanTrace := func(ord, total int) *workload.Trace {
		if scanFull == nil {
			scanFull = workload.SequentialScanTrace(canvas, env.Cfg.ViewportW, env.Cfg.ViewportH)
		}
		stride := opts.StepsPerClient + 1
		if total > 0 && len(scanFull.Steps)/total > stride {
			stride = len(scanFull.Steps) / total
		}
		steps := make([]geom.Rect, 0, opts.StepsPerClient+1)
		start := ord * stride
		for k := 0; k <= opts.StepsPerClient; k++ {
			steps = append(steps, scanFull.Steps[(start+k)%len(scanFull.Steps)])
		}
		return &workload.Trace{Name: "sequential-scan", Steps: steps}
	}
	switch opts.Workload {
	case "", "walk":
		for i := range traces {
			seed := int64(i)
			if opts.SharedTraces > 0 {
				seed = int64(i % opts.SharedTraces)
			}
			start := geom.Point{
				X: env.Cfg.ViewportW/2 + float64(seed)*env.Cfg.ViewportW,
				Y: canvas.H() / 2,
			}
			traces[i] = workload.RandomWalkTrace(start, env.Cfg.ViewportW/2,
				opts.StepsPerClient, env.Cfg.ViewportW, env.Cfg.ViewportH,
				1000+seed, canvas)
		}
	case "zipf":
		for i := range traces {
			traces[i] = zipfTrace(i)
		}
	case "scan":
		for i := range traces {
			traces[i] = scanTrace(i, n)
		}
	case "mixed":
		for i := range traces {
			if i%4 == 3 {
				traces[i] = scanTrace(i/4, n/4)
			} else {
				traces[i] = zipfTrace(i)
			}
		}
	case "zoom":
		for i := range traces {
			traces[i] = workload.ZipfZoomTrace(workload.ZipfZoomOptions{
				Canvas:   canvas,
				HotSpots: 64, Skew: 1.2,
				Steps: opts.StepsPerClient,
				VpW:   env.Cfg.ViewportW, VpH: env.Cfg.ViewportH,
				// Deep enough that the top level shows most of the
				// canvas on the quick/default configs.
				ZoomLevels: 5,
				LayoutSeed: 7, Seed: 1000 + int64(i),
			})
		}
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q (want walk|zipf|scan|mixed|zoom)", opts.Workload)
	}
	return traces, nil
}

func protoName(p int) string {
	switch p {
	case frontend.ProtocolV1:
		return "v1"
	case frontend.ProtocolV2:
		return "v2"
	case frontend.ProtocolV3:
		return "v3"
	}
	return "auto"
}
