package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"kyrix/internal/cache"
	"kyrix/internal/fetch"
	"kyrix/internal/frontend"
	"kyrix/internal/geom"
	"kyrix/internal/workload"
)

// ConcurrentOptions configures a concurrent-clients run.
type ConcurrentOptions struct {
	// ClientCounts are the parallel-frontend counts to sweep.
	ClientCounts []int
	// StepsPerClient is the pan steps each client replays (excluding
	// the initial load).
	StepsPerClient int
	// Scheme is the fetching granularity every client uses.
	Scheme fetch.Granularity
	// BatchSize is each client's tile-batching knob (tiles schemes
	// only; 0 disables).
	BatchSize int
	// Protocol selects the /batch wire protocol
	// (frontend.ProtocolAuto/V1/V2/V3): the protocol comparison axis
	// for wire bytes, compression ratio and time-to-first-frame.
	Protocol int
	// Compression selects v3 per-frame compression
	// (frontend.CompressionAuto/Off).
	Compression int
	// SharedTraces groups clients onto this many distinct traces, so
	// concurrent clients overlap and request coalescing has identical
	// in-flight requests to merge. 0 means every client gets its own
	// trace (no overlap). Random-walk workload only.
	SharedTraces int
	// Workload selects each client's trace shape:
	//
	//	"walk" (or "")  random-walk pans — the historical default
	//	"zipf"          zipf-hot-set pan/zoom: all clients share one
	//	                hot-spot layout and revisit it with zipf skew
	//	"scan"          one-shot sequential scan of the canvas
	//	"mixed"         3 of every 4 clients run zipf, the fourth runs
	//	                a scan — the adversarial multi-tenant case the
	//	                cache admission policy exists for
	//
	// The zipf/scan/mixed workloads disable the frontend cache so the
	// backend cache sees the full request stream (the hit-ratio column
	// measures the backend policy, not the client's cache).
	Workload string
}

// DefaultConcurrentOptions sweeps 1..16 clients replaying tile fetches
// with batching, with clients paired onto shared traces.
func DefaultConcurrentOptions() ConcurrentOptions {
	return ConcurrentOptions{
		ClientCounts:   []int{1, 2, 4, 8, 16},
		StepsPerClient: 12,
		Scheme:         fetch.TileSpatial1024,
		BatchSize:      8,
		SharedTraces:   4,
	}
}

// ConcurrentRowStats is one client-count row of the concurrent sweep
// in machine-readable form — what kyrix-bench -json persists so the
// perf trajectory is comparable across PRs.
type ConcurrentRowStats struct {
	Clients     int     `json:"clients"`
	StepsPerSec float64 `json:"stepsPerSec"`
	MeanMs      float64 `json:"meanMs"`
	P50Ms       float64 `json:"p50Ms"`
	P95Ms       float64 `json:"p95Ms"`
	DbqPerStep  float64 `json:"dbqPerStep"`
	CoalPerStep float64 `json:"coalPerStep"`
	// WireKBPerStep is bytes read off the wire by batch round trips
	// per measured step; TtffMs the mean time to first decoded frame
	// (framed protocols only).
	WireKBPerStep float64 `json:"wireKBPerStep"`
	TtffMs        float64 `json:"ttffMs"`
	// CompressionRatio is wire bytes over logical payload bytes across
	// the measured steps: ~1 on v2 (framing only), below 1 when v3's
	// compression and delta frames earn their keep. 0 when unbatched.
	CompressionRatio float64 `json:"compressionRatio"`
	// HitRatio is the backend cache hit ratio over the measured steps
	// (hits/(hits+misses) deltas); CacheAdmitted/CacheRejected count
	// the W-TinyLFU admission gate's decisions in that window (both 0
	// with admission off).
	HitRatio      float64 `json:"hitRatio"`
	CacheAdmitted int64   `json:"cacheAdmitted"`
	CacheRejected int64   `json:"cacheRejected"`
}

// ConcurrentClients measures the backend under N parallel frontends:
// the throughput/latency sweep behind the ROADMAP's "heavy traffic"
// goal, and the ablation surface for the serving pipeline (sharded
// cache, coalescing, batching, wire protocol). Each client replays a
// random-walk trace; clients sharing a trace issue identical requests
// and exercise coalescing. The backend cache is cleared before each
// client count so rows are comparable cold starts. Returns the
// formatted table plus per-row machine-readable stats.
func ConcurrentClients(env *Env, opts ConcurrentOptions) (*Table, []ConcurrentRowStats, error) {
	if len(opts.ClientCounts) == 0 || opts.StepsPerClient <= 0 {
		return nil, nil, fmt.Errorf("experiments: concurrent run needs client counts and steps")
	}
	rows := make([]string, len(opts.ClientCounts))
	for i, n := range opts.ClientCounts {
		rows[i] = fmt.Sprintf("%d clients", n)
	}
	workloadName := opts.Workload
	if workloadName == "" {
		workloadName = "walk"
	}
	cols := []string{"steps/s", "mean ms", "p95 ms", "dbq/step", "coal/step", "hit%", "wireKB/step", "ttff ms", "ratio"}
	t := NewTable(
		fmt.Sprintf("Concurrent clients: %s over %q (%s workload)", opts.Scheme.Name(), env.Cfg.Name, workloadName),
		"mixed units, see columns", rows, cols)
	t.Notes = append(t.Notes,
		fmt.Sprintf("steps/client=%d batch=%d proto=%s sharedTraces=%d; backend cache cleared per row",
			opts.StepsPerClient, opts.BatchSize, protoName(opts.Protocol), opts.SharedTraces),
		"hit%: backend cache hit ratio over the measured steps (zipf/scan/mixed workloads disable the frontend cache so the backend policy is what is measured)",
		"wireKB/step: bytes read off the wire by batch round trips (v1 counts the base64 JSON envelope, v2/v3 the framed stream); 0 when unbatched",
		"ttff ms: mean time to first decoded frame, framed streaming only",
		"ratio: wire bytes / logical payload bytes (v3 compression + delta savings; ~1 on v2)")

	var stats []ConcurrentRowStats
	for _, n := range opts.ClientCounts {
		row := fmt.Sprintf("%d clients", n)
		env.Srv.BackendCache().Clear()

		traces, err := buildTraces(env, opts, n)
		if err != nil {
			return nil, nil, err
		}

		type result struct {
			durs  []float64 // per-pan-step, ms
			ttffs []float64 // per-step time to first frame, ms (framed only)
			wire  int64     // bytes on the wire across measured steps
			raw   int64     // logical payload bytes across measured steps
			err   error
		}
		results := make([]result, n)
		var wg sync.WaitGroup
		// Setup (client construction's /app fetch and the cold initial
		// load) happens before the wall clock starts: steps/s measures
		// the measured pan steps only, like the per-step figures.
		start := make(chan struct{})
		var ready sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			ready.Add(1)
			go func(i int) {
				defer wg.Done()
				fcache := env.Cfg.FrontendCacheBytes
				if cacheWorkload(opts.Workload) {
					// The hit-ratio column measures the backend cache
					// policy; a frontend cache would absorb the very
					// revisits the zipf workload exists to produce.
					fcache = 0
				}
				c, err := frontend.NewClient(env.BaseURL, env.CA, frontend.Options{
					Scheme:        opts.Scheme,
					Codec:         env.Cfg.Codec,
					CacheBytes:    fcache,
					BatchSize:     opts.BatchSize,
					BatchProtocol: opts.Protocol,
					Compression:   opts.Compression,
				})
				if err == nil {
					_, err = c.Pan(traces[i].Steps[0])
				}
				results[i].err = err
				ready.Done()
				<-start
				if err != nil {
					return
				}
				for _, step := range traces[i].Steps[1:] {
					rep, err := c.Pan(step)
					if err != nil {
						results[i].err = err
						return
					}
					results[i].durs = append(results[i].durs,
						float64(rep.Duration.Microseconds())/1000)
					results[i].wire += rep.WireBytes
					results[i].raw += rep.Bytes
					if rep.FirstFrame > 0 {
						results[i].ttffs = append(results[i].ttffs,
							float64(rep.FirstFrame.Microseconds())/1000)
					}
				}
			}(i)
		}
		ready.Wait()
		// Snapshot server counters only now: the untimed setup phase
		// (concurrent cold initial loads) must not be billed to the
		// measured steps.
		dbqBefore := env.Srv.Stats.DBQueries.Load()
		coalBefore := env.Srv.Stats.CoalescedHits.Load()
		bcBefore := env.Srv.BackendCache().Stats()
		wallStart := time.Now()
		close(start)
		wg.Wait()
		wall := time.Since(wallStart).Seconds()

		var durs, ttffs []float64
		var wireBytes, rawBytes int64
		for i := range results {
			if results[i].err != nil {
				return nil, nil, fmt.Errorf("experiments: client %d: %w", i, results[i].err)
			}
			durs = append(durs, results[i].durs...)
			ttffs = append(ttffs, results[i].ttffs...)
			wireBytes += results[i].wire
			rawBytes += results[i].raw
		}
		steps := float64(len(durs))
		if steps == 0 || wall <= 0 {
			return nil, nil, fmt.Errorf("experiments: concurrent run measured nothing")
		}
		sort.Float64s(durs)
		var sum float64
		for _, d := range durs {
			sum += d
		}
		p50 := durs[int(math.Ceil(0.50*steps))-1]
		p95 := durs[int(math.Ceil(0.95*steps))-1]
		dbq := float64(env.Srv.Stats.DBQueries.Load() - dbqBefore)
		coal := float64(env.Srv.Stats.CoalescedHits.Load() - coalBefore)
		bcAfter := env.Srv.BackendCache().Stats()
		bcDelta := cache.Stats{
			Hits:   bcAfter.Hits - bcBefore.Hits,
			Misses: bcAfter.Misses - bcBefore.Misses,
		}

		var ttffMean float64
		if len(ttffs) > 0 {
			for _, v := range ttffs {
				ttffMean += v
			}
			ttffMean /= float64(len(ttffs))
		}
		var ratio float64
		if rawBytes > 0 {
			ratio = float64(wireBytes) / float64(rawBytes)
		}

		rs := ConcurrentRowStats{
			Clients:          n,
			StepsPerSec:      steps / wall,
			MeanMs:           sum / steps,
			P50Ms:            p50,
			P95Ms:            p95,
			DbqPerStep:       dbq / steps,
			CoalPerStep:      coal / steps,
			WireKBPerStep:    float64(wireBytes) / 1024 / steps,
			TtffMs:           ttffMean,
			CompressionRatio: ratio,
			HitRatio:         bcDelta.HitRatio(),
			CacheAdmitted:    bcAfter.Admitted - bcBefore.Admitted,
			CacheRejected:    bcAfter.Rejected - bcBefore.Rejected,
		}
		stats = append(stats, rs)

		t.Set(row, "steps/s", rs.StepsPerSec, Series{})
		t.Set(row, "mean ms", rs.MeanMs, Series{})
		t.Set(row, "p95 ms", rs.P95Ms, Series{})
		t.Set(row, "dbq/step", rs.DbqPerStep, Series{})
		t.Set(row, "coal/step", rs.CoalPerStep, Series{})
		t.Set(row, "hit%", 100*rs.HitRatio, Series{})
		t.Set(row, "wireKB/step", rs.WireKBPerStep, Series{})
		t.Set(row, "ttff ms", rs.TtffMs, Series{})
		t.Set(row, "ratio", rs.CompressionRatio, Series{})
	}
	return t, stats, nil
}

// cacheWorkload reports whether w is one of the backend-cache
// adversaries (which disable the frontend cache).
func cacheWorkload(w string) bool {
	return w == "zipf" || w == "scan" || w == "mixed"
}

// buildTraces constructs each client's trace for the selected
// workload. The zipf workload shares one hot-spot layout across
// clients (the multi-tenant skew the admission policy protects);
// scans read windows of one canvas sweep, spaced evenly so the
// windows are disjoint whenever the sweep is long enough — once the
// scanning clients together demand more viewports than one sweep
// holds, the windows wrap and scan traffic stops being strictly
// one-shot (the hit%% column then also reflects scan re-reads); mixed
// gives every fourth client the scan role.
func buildTraces(env *Env, opts ConcurrentOptions, n int) ([]*workload.Trace, error) {
	canvas := env.Dataset.Canvas()
	traces := make([]*workload.Trace, n)
	zipfTrace := func(i int) *workload.Trace {
		return workload.ZipfHotSetTrace(workload.ZipfOptions{
			Canvas:   canvas,
			TileSize: env.Cfg.ViewportW,
			HotSpots: 64, Skew: 1.2,
			Steps: opts.StepsPerClient,
			VpW:   env.Cfg.ViewportW, VpH: env.Cfg.ViewportH,
			LayoutSeed: 7, Seed: 1000 + int64(i),
		})
	}
	var scanFull *workload.Trace
	scanTrace := func(ord, total int) *workload.Trace {
		if scanFull == nil {
			scanFull = workload.SequentialScanTrace(canvas, env.Cfg.ViewportW, env.Cfg.ViewportH)
		}
		stride := opts.StepsPerClient + 1
		if total > 0 && len(scanFull.Steps)/total > stride {
			stride = len(scanFull.Steps) / total
		}
		steps := make([]geom.Rect, 0, opts.StepsPerClient+1)
		start := ord * stride
		for k := 0; k <= opts.StepsPerClient; k++ {
			steps = append(steps, scanFull.Steps[(start+k)%len(scanFull.Steps)])
		}
		return &workload.Trace{Name: "sequential-scan", Steps: steps}
	}
	switch opts.Workload {
	case "", "walk":
		for i := range traces {
			seed := int64(i)
			if opts.SharedTraces > 0 {
				seed = int64(i % opts.SharedTraces)
			}
			start := geom.Point{
				X: env.Cfg.ViewportW/2 + float64(seed)*env.Cfg.ViewportW,
				Y: canvas.H() / 2,
			}
			traces[i] = workload.RandomWalkTrace(start, env.Cfg.ViewportW/2,
				opts.StepsPerClient, env.Cfg.ViewportW, env.Cfg.ViewportH,
				1000+seed, canvas)
		}
	case "zipf":
		for i := range traces {
			traces[i] = zipfTrace(i)
		}
	case "scan":
		for i := range traces {
			traces[i] = scanTrace(i, n)
		}
	case "mixed":
		for i := range traces {
			if i%4 == 3 {
				traces[i] = scanTrace(i/4, n/4)
			} else {
				traces[i] = zipfTrace(i)
			}
		}
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q (want walk|zipf|scan|mixed)", opts.Workload)
	}
	return traces, nil
}

func protoName(p int) string {
	switch p {
	case frontend.ProtocolV1:
		return "v1"
	case frontend.ProtocolV2:
		return "v2"
	case frontend.ProtocolV3:
		return "v3"
	}
	return "auto"
}
