package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoSequential(t *testing.T) {
	var g Group
	v, err, dup := g.Do("k", func() (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 || dup {
		t.Fatalf("Do = %v %v dup=%v", v, err, dup)
	}
	// A second call after completion executes again (no result caching).
	calls := 0
	for i := 0; i < 2; i++ {
		g.Do("k", func() (any, error) { calls++; return nil, nil })
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (Do must not memoize)", calls)
	}
}

func TestDoError(t *testing.T) {
	var g Group
	want := errors.New("boom")
	_, err, _ := g.Do("k", func() (any, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoCoalesces(t *testing.T) {
	var g Group
	var execs atomic.Int64
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do("tile/0/0", func() (any, error) {
				execs.Add(1)
				<-release
				return 7, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results[i] = v.(int)
		}(i)
	}
	// Wait until all n callers are attached to the same flight, then
	// release the single execution.
	deadline := time.Now().Add(5 * time.Second)
	for g.Pending("tile/0/0") < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callers coalesced", g.Pending("tile/0/0"), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	for i, r := range results {
		if r != 7 {
			t.Fatalf("caller %d got %d", i, r)
		}
	}
	if g.Pending("tile/0/0") != 0 {
		t.Fatal("flight not cleaned up")
	}
}

func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			g.Do(key, func() (any, error) { execs.Add(1); return nil, nil })
		}(key)
	}
	wg.Wait()
	if got := execs.Load(); got != 3 {
		t.Fatalf("executions = %d, want 3", got)
	}
}
