// Package singleflight provides duplicate-call suppression for the
// backend's request coalescing: when N concurrent requests ask for the
// same tile or dynamic box, one executes the database query and the
// other N-1 wait for, and share, its result.
//
// It is a from-scratch implementation of the classic groupcache
// pattern (no external dependency), trimmed to what the server needs:
// Do, a duplicate counter for stats, and a Pending introspection hook
// the coalescing tests use to make "N callers in flight" deterministic.
package singleflight

import (
	"fmt"
	"sync"
)

// call is one in-flight (or completed) Do invocation.
type call struct {
	wg   sync.WaitGroup
	val  any
	err  error
	dups int
}

// Group suppresses duplicate function calls by key.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do executes fn and returns its result, ensuring that only one
// execution per key is in flight at a time. Concurrent callers with
// the same key wait for the first call and receive its result; dup is
// true for exactly those piggybacking callers and false for the one
// that executed fn, so callers can count suppressed executions.
func (g *Group) Do(key string, fn func() (any, error)) (v any, err error, dup bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(call)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// Release waiters and clear the flight even if fn panics: without
	// this, a panicking query would leave the key poisoned and every
	// future caller blocked on wg.Wait forever. Waiters get an error;
	// the panic itself still propagates to this (executing) caller.
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("singleflight: executing call panicked: %v", r)
			g.mu.Lock()
			c.wg.Done()
			delete(g.m, key)
			g.mu.Unlock()
			panic(r)
		}
		g.mu.Lock()
		c.wg.Done()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

// Pending returns how many callers are currently in flight for key:
// 0 when idle, otherwise 1 (the executor) plus its duplicates. Tests
// use it to wait until all N concurrent callers have coalesced before
// releasing the underlying query.
func (g *Group) Pending(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.m[key]
	if !ok {
		return 0
	}
	return c.dups + 1
}
