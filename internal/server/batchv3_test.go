package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"

	"kyrix/internal/storage"
	"kyrix/internal/wire"
)

// postBatchV3Raw posts a v3 request and fully decodes the framed
// stream, returning frames indexed by item position.
func postBatchV3Raw(t *testing.T, url string, req BatchRequestV2) []Frame {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch v3: %s: %s", resp.Status, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != BatchV3ContentType {
		t.Fatalf("content type = %q, want %q", ct, BatchV3ContentType)
	}
	br := bufio.NewReader(resp.Body)
	version, n, err := wire.ReadHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	if version != wire.V3 {
		t.Fatalf("stream version = %d, want 3", version)
	}
	if n != len(req.Items) {
		t.Fatalf("announced %d frames for %d items", n, len(req.Items))
	}
	out := make([]Frame, n)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		f, err := wire.ReadFrame(br, wire.V3)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Index >= n || seen[f.Index] {
			t.Fatalf("bogus frame index %d", f.Index)
		}
		seen[f.Index] = true
		out[f.Index] = f
	}
	if _, err := wire.ReadFrame(br, wire.V3); err != io.EOF {
		t.Fatalf("stream should end after %d frames, got %v", n, err)
	}
	return out
}

// inflateFrame recovers the full payload of a non-delta v3 frame.
func inflateFrame(t *testing.T, f Frame) []byte {
	t.Helper()
	if !f.Codec.Compressed() {
		return f.Payload
	}
	out, err := wire.Decompress(f.Payload, wire.MaxFramePayload)
	if err != nil {
		t.Fatalf("inflate frame %d: %v", f.Index, err)
	}
	return out
}

// TestBatchV3CompressionMatchesV2 serves the same items over v2 and v3
// and checks that v3's inflated payloads are byte-identical to v2's raw
// ones while the JSON-codec frames actually shrink on the wire.
func TestBatchV3CompressionMatchesV2(t *testing.T) {
	_, hs := newPointsServer(t, 4000, 4096, 2048)
	items := []BatchItem{
		{Kind: "tile", Layer: 0, Size: 512, Col: 1, Row: 1},
		{Kind: "dbox", Layer: 0, MinX: 100, MinY: 100, MaxX: 1200, MaxY: 900},
		{Kind: "tile", Layer: 0, Size: 512, Col: 9, Row: 0}, // bad col (error frame)
	}
	items[2].Col = -1
	v2frames, _ := postBatchV2Raw(t, hs.URL, BatchRequestV2{
		V: BatchV2Version, Canvas: "main", Codec: CodecJSON, Items: items,
	})
	v3frames := postBatchV3Raw(t, hs.URL, BatchRequestV2{
		V: BatchV3Version, Canvas: "main", Codec: CodecJSON, Items: items,
	})
	var wireV2, wireV3 int
	for i := range items {
		wireV2 += len(v2frames[i].Payload)
		wireV3 += len(v3frames[i].Payload)
		if v3frames[i].Status != v2frames[i].Status {
			t.Fatalf("frame %d status: v3 %d vs v2 %d", i, v3frames[i].Status, v2frames[i].Status)
		}
		if v3frames[i].Status != FrameOK {
			if v3frames[i].Codec != FrameRaw {
				t.Fatalf("error frame %d not raw: codec %d", i, v3frames[i].Codec)
			}
			continue
		}
		if got := inflateFrame(t, v3frames[i]); !bytes.Equal(got, v2frames[i].Payload) {
			t.Fatalf("frame %d inflates to different bytes than v2", i)
		}
	}
	if wireV3 >= wireV2 {
		t.Fatalf("v3 JSON frames did not shrink: v2=%d v3=%d", wireV2, wireV3)
	}

	// Compression-off override: every frame ships raw and matches v2.
	offFrames := postBatchV3Raw(t, hs.URL, BatchRequestV2{
		V: BatchV3Version, Canvas: "main", Codec: CodecJSON, Comp: CompOff, Items: items,
	})
	for i := range items {
		if offFrames[i].Codec != FrameRaw {
			t.Fatalf("comp=off frame %d codec = %d, want raw", i, offFrames[i].Codec)
		}
		if !bytes.Equal(offFrames[i].Payload, v2frames[i].Payload) {
			t.Fatalf("comp=off frame %d differs from v2", i)
		}
	}

	// Unknown compression mode is a request-level error.
	body, _ := json.Marshal(BatchRequestV2{
		V: BatchV3Version, Canvas: "main", Comp: "zstd",
		Items: []BatchItem{{Kind: "tile", Size: 512}},
	})
	resp, err := http.Post(hs.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("comp=zstd accepted: %d", resp.StatusCode)
	}
}

// fetchBoxPayload grabs one dbox payload (and its wire id) via a plain
// v3 batch with no base, simulating the client's first full fetch.
func fetchBoxPayload(t *testing.T, url string, it BatchItem, codec Codec) ([]byte, uint64) {
	t.Helper()
	frames := postBatchV3Raw(t, url, BatchRequestV2{
		V: BatchV3Version, Canvas: "main", Codec: codec, Comp: CompOff,
		Items: []BatchItem{it},
	})
	if frames[0].Status != FrameOK || frames[0].Codec != FrameRaw {
		t.Fatalf("full fetch frame = %+v", frames[0])
	}
	return frames[0].Payload, wire.PayloadID(frames[0].Payload)
}

func TestBatchV3DeltaFrames(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		srv, hs := newPointsServer(t, 6000, 4096, 2048)

		baseItem := BatchItem{Kind: "dbox", Layer: 0, MinX: 0, MinY: 0, MaxX: 1000, MaxY: 800}
		basePayload, baseID := fetchBoxPayload(t, hs.URL, baseItem, codec)

		// A pan right by 200: ~80% overlap with the base box.
		newItem := BatchItem{Kind: "dbox", Layer: 0, MinX: 200, MinY: 0, MaxX: 1200, MaxY: 800,
			Base: &BaseRef{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 800, ID: strconv.FormatUint(baseID, 16)}}
		fullPayload, _ := fetchBoxPayload(t, hs.URL, BatchItem{
			Kind: "dbox", Layer: 0, MinX: 200, MinY: 0, MaxX: 1200, MaxY: 800}, codec)

		deltaBefore := srv.Stats.DeltaFrames.Load()
		frames := postBatchV3Raw(t, hs.URL, BatchRequestV2{
			V: BatchV3Version, Canvas: "main", Codec: codec, Comp: CompOff,
			Items: []BatchItem{newItem},
		})
		f := frames[0]
		if f.Status != FrameOK || f.Codec != FrameDelta {
			t.Fatalf("codec %s: overlap pan frame = status %d codec %d, want delta", codec, f.Status, f.Codec)
		}
		if srv.Stats.DeltaFrames.Load() != deltaBefore+1 {
			t.Fatalf("DeltaFrames stat not bumped")
		}
		if len(f.Payload) >= len(fullPayload) {
			t.Fatalf("codec %s: delta (%d B) not smaller than full (%d B)", codec, len(f.Payload), len(fullPayload))
		}

		// Applying the delta to the base reconstructs the full result
		// row-for-row.
		d, err := wire.DecodeDelta(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if d.FullLen != len(fullPayload) || d.NewID != wire.PayloadID(fullPayload) {
			t.Fatalf("delta header: fullLen %d id %x, want %d %x",
				d.FullLen, d.NewID, len(fullPayload), wire.PayloadID(fullPayload))
		}
		baseDR, err := Decode(basePayload, codec)
		if err != nil {
			t.Fatal(err)
		}
		enterDR, err := Decode(d.Entering, codec)
		if err != nil {
			t.Fatal(err)
		}
		tomb := make(map[int64]bool, len(d.Tombstones))
		for _, id := range d.Tombstones {
			tomb[id] = true
		}
		got := make(map[int64]storage.Row)
		for _, row := range baseDR.Rows {
			if !tomb[row[0].AsInt()] {
				got[row[0].AsInt()] = row
			}
		}
		for _, row := range enterDR.Rows {
			got[row[0].AsInt()] = row
		}
		fullDR, err := Decode(fullPayload, codec)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(fullDR.Rows) {
			t.Fatalf("codec %s: delta reconstructs %d rows, full has %d", codec, len(got), len(fullDR.Rows))
		}
		for _, row := range fullDR.Rows {
			if _, ok := got[row[0].AsInt()]; !ok {
				t.Fatalf("codec %s: row %d missing after delta apply", codec, row[0].AsInt())
			}
		}
	}
}

func TestBatchV3DeltaFallsBackToFull(t *testing.T) {
	srv, hs := newPointsServer(t, 5000, 4096, 2048)
	baseItem := BatchItem{Kind: "dbox", Layer: 0, MinX: 0, MinY: 0, MaxX: 1000, MaxY: 800}
	_, baseID := fetchBoxPayload(t, hs.URL, baseItem, CodecJSON)
	baseRef := BaseRef{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 800, ID: strconv.FormatUint(baseID, 16)}

	expectFull := func(name string, it BatchItem) {
		t.Helper()
		frames := postBatchV3Raw(t, hs.URL, BatchRequestV2{
			V: BatchV3Version, Canvas: "main", Codec: CodecJSON, Comp: CompOff,
			Items: []BatchItem{it},
		})
		if frames[0].Status != FrameOK {
			t.Fatalf("%s: status %d: %s", name, frames[0].Status, frames[0].Payload)
		}
		if frames[0].Codec.IsDelta() {
			t.Fatalf("%s: got a delta frame, want full fallback", name)
		}
	}

	// Stale/forged base id: the cached base does not hash to it.
	it := BatchItem{Kind: "dbox", Layer: 0, MinX: 200, MinY: 0, MaxX: 1200, MaxY: 800}
	it.Base = &BaseRef{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 800, ID: "deadbeef"}
	expectFull("forged base id", it)

	// Unparseable base id.
	it.Base = &BaseRef{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 800, ID: "not-hex"}
	expectFull("bad base id", it)

	// Too little overlap: the tombstone machinery cannot pay off.
	far := BatchItem{Kind: "dbox", Layer: 0, MinX: 3000, MinY: 1000, MaxX: 4000, MaxY: 1800,
		Base: &baseRef}
	expectFull("tiny overlap", far)

	// Base evicted from the backend cache: recomputing it would cost a
	// database query, so the server ships the full frame instead.
	srv.BackendCache().Clear()
	good := BatchItem{Kind: "dbox", Layer: 0, MinX: 200, MinY: 0, MaxX: 1200, MaxY: 800,
		Base: &baseRef}
	expectFull("base missing from cache", good)
}

// TestBatchV3DeltaAcrossUpdate: an /update between the base fetch and
// an overlapping pan must never ship a delta computed against the
// pre-update world — the stale-base guarantee is "full frame, never
// wrong rows", and the post-update frame must carry the new values.
func TestBatchV3DeltaAcrossUpdate(t *testing.T) {
	_, hs := newPointsServer(t, 3000, 4096, 2048)
	baseItem := BatchItem{Kind: "dbox", Layer: 0, MinX: 0, MinY: 0, MaxX: 1000, MaxY: 800}
	_, baseID := fetchBoxPayload(t, hs.URL, baseItem, CodecJSON)

	// Change a column of every row via the real /update endpoint (the
	// epoch transition: exec + generation bump + cache clear).
	upd, _ := json.Marshal(map[string]any{"sql": "UPDATE points SET val = 4242.0"})
	resp, err := http.Post(hs.URL+"/update", "application/json", bytes.NewReader(upd))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/update: %s", resp.Status)
	}

	frames := postBatchV3Raw(t, hs.URL, BatchRequestV2{
		V: BatchV3Version, Canvas: "main", Codec: CodecJSON, Comp: CompOff,
		Items: []BatchItem{{Kind: "dbox", Layer: 0, MinX: 200, MinY: 0, MaxX: 1200, MaxY: 800,
			Base: &BaseRef{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 800, ID: strconv.FormatUint(baseID, 16)}}},
	})
	if frames[0].Status != FrameOK {
		t.Fatalf("post-update frame: %s", frames[0].Payload)
	}
	if frames[0].Codec.IsDelta() {
		t.Fatal("post-update request delta-encoded against a pre-update base")
	}
	dr, err := Decode(frames[0].Payload, CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Rows) == 0 {
		t.Fatal("post-update box empty")
	}
	for _, row := range dr.Rows {
		if got := row[3].AsFloat(); got != 4242.0 {
			t.Fatalf("post-update row %d carries stale val %g", row[0].AsInt(), got)
		}
	}
}
