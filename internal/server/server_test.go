package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"kyrix/internal/fetch"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

func testResponse() *DataResponse {
	return &DataResponse{
		Cols:  []string{"id", "x", "name", "flag"},
		Types: []storage.ColType{storage.TInt64, storage.TFloat64, storage.TString, storage.TBool},
		Rows: []storage.Row{
			{storage.I64(1), storage.F64(2.5), storage.Str("a"), storage.Bool(true)},
			{storage.I64(-7), storage.F64(math.Pi), storage.Str("héllo'\"x"), storage.Bool(false)},
		},
	}
}

func TestWireRoundtrip(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		t.Run(string(codec), func(t *testing.T) {
			dr := testResponse()
			data, err := Encode(dr, codec)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Decode(data, codec)
			if err != nil {
				t.Fatal(err)
			}
			if len(back.Rows) != 2 || len(back.Cols) != 4 {
				t.Fatalf("shape = %dx%d", len(back.Rows), len(back.Cols))
			}
			for i := range dr.Rows {
				for j := range dr.Rows[i] {
					if !back.Rows[i][j].Equal(dr.Rows[i][j]) {
						t.Fatalf("cell %d,%d: %v vs %v", i, j, back.Rows[i][j], dr.Rows[i][j])
					}
				}
			}
		})
	}
}

func TestWireEmptyResult(t *testing.T) {
	dr := &DataResponse{Cols: []string{"a"}, Types: []storage.ColType{storage.TFloat64}}
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		data, err := Encode(dr, codec)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(data, codec)
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Rows) != 0 || len(back.Cols) != 1 {
			t.Fatalf("%s: empty roundtrip = %+v", codec, back)
		}
	}
}

func TestWireBinarySmallerThanJSON(t *testing.T) {
	dr := &DataResponse{
		Cols:  []string{"id", "x", "y"},
		Types: []storage.ColType{storage.TInt64, storage.TFloat64, storage.TFloat64},
	}
	for i := 0; i < 1000; i++ {
		dr.Rows = append(dr.Rows, storage.Row{
			storage.I64(int64(i)), storage.F64(float64(i) * 1.37), storage.F64(float64(i) * 9.1),
		})
	}
	j, _ := Encode(dr, CodecJSON)
	b, _ := Encode(dr, CodecBinary)
	if len(b) >= len(j) {
		t.Fatalf("binary %d >= json %d", len(b), len(j))
	}
}

func TestWireErrors(t *testing.T) {
	if _, err := Encode(testResponse(), "xml"); err == nil {
		t.Fatal("unknown codec must fail")
	}
	if _, err := Decode([]byte("{bad"), CodecJSON); err == nil {
		t.Fatal("bad json must fail")
	}
	if _, err := Decode([]byte{0xFF}, CodecBinary); err == nil {
		t.Fatal("truncated binary must fail")
	}
	good, _ := Encode(testResponse(), CodecBinary)
	if _, err := Decode(good[:len(good)-3], CodecBinary); err == nil {
		t.Fatal("truncated binary rows must fail")
	}
}

// newPointsApp loads a small uniform dataset and compiles the
// single-canvas separable app the experiments use; servers over it are
// built by newPointsServer (default options) or directly by tests that
// need custom Options (the L2 tests rebuild servers over one app).
func newPointsApp(t testing.TB, n int, canvasW, canvasH float64) (*sqldb.DB, *spec.CompiledApp) {
	t.Helper()
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	d := workload.Uniform(n, canvasW, canvasH, 11)
	for _, p := range d.Points {
		if err := db.InsertRow("points", storage.Row{
			storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &spec.App{
		Name: "pts",
		Canvases: []spec.Canvas{{
			ID: "main", W: canvasW, H: canvasH,
			Transforms: []spec.Transform{{
				ID: "t", Query: "SELECT * FROM points",
				Columns: []spec.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
				},
			}},
			Layers: []spec.Layer{{
				TransformID: "t",
				Placement:   &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:    "dots",
			}},
		}},
		InitialCanvas: "main", InitialX: canvasW / 2, InitialY: canvasH / 2,
		ViewportW: 512, ViewportH: 512,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	return db, ca
}

// newPointsServer builds a complete backend over a small uniform
// dataset: the single-canvas separable app the experiments use.
func newPointsServer(t testing.TB, n int, canvasW, canvasH float64) (*Server, *httptest.Server) {
	t.Helper()
	db, ca := newPointsApp(t, n, canvasW, canvasH)
	srv, err := New(db, ca, Options{
		CacheBytes: 8 << 20,
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    []float64{512},
			MappingIndex: sqldb.IndexBTree,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

func TestAppEndpoint(t *testing.T) {
	_, hs := newPointsServer(t, 500, 4096, 2048)
	var meta AppMeta
	getJSON(t, hs.URL+"/app", &meta)
	if meta.Name != "pts" || len(meta.Canvases) != 1 {
		t.Fatalf("meta = %+v", meta)
	}
	lm := meta.Canvases[0].Layers[0]
	if !lm.HasData || !lm.Separable || lm.Radius != 1 {
		t.Fatalf("layer meta = %+v", lm)
	}
	if lm.XScale != 1 || lm.YScale != 1 {
		t.Fatalf("scales = %g %g", lm.XScale, lm.YScale)
	}
	if len(lm.TileSizes) != 1 || lm.TileSizes[0] != 512 {
		t.Fatalf("tile sizes = %v", lm.TileSizes)
	}
	// RowBox from meta matches the placement.
	row := storage.Row{storage.I64(1), storage.F64(100), storage.F64(50), storage.F64(0)}
	box := lm.RowBox(row)
	if box.Center() != (struct{ X, Y float64 }{100, 50}) && (box.MinX != 99 || box.MaxY != 51) {
		t.Fatalf("rowbox = %v", box)
	}
}

func TestTileEndpointBothDesigns(t *testing.T) {
	srv, hs := newPointsServer(t, 2000, 4096, 2048)
	fetchTile := func(design string) *DataResponse {
		resp, err := http.Get(fmt.Sprintf("%s/tile?canvas=main&layer=0&size=512&col=2&row=1&design=%s", hs.URL, design))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("tile %s: %s: %s", design, resp.Status, body)
		}
		dr, err := Decode(body, CodecJSON)
		if err != nil {
			t.Fatal(err)
		}
		return dr
	}
	sp := fetchTile("spatial")
	mp := fetchTile("mapping")
	if len(sp.Rows) == 0 {
		t.Fatal("empty tile")
	}
	ids := func(dr *DataResponse) map[int64]bool {
		out := map[int64]bool{}
		for _, r := range dr.Rows {
			out[r[0].AsInt()] = true
		}
		return out
	}
	si, mi := ids(sp), ids(mp)
	if len(si) != len(mi) {
		t.Fatalf("spatial %d ids, mapping %d ids", len(si), len(mi))
	}
	for id := range si {
		if !mi[id] {
			t.Fatalf("id %d missing from mapping result", id)
		}
	}
	if srv.Stats.TileRequests.Load() != 2 {
		t.Fatalf("tile requests = %d", srv.Stats.TileRequests.Load())
	}
}

func TestTileCacheHit(t *testing.T) {
	srv, hs := newPointsServer(t, 500, 4096, 2048)
	url := hs.URL + "/tile?canvas=main&layer=0&size=512&col=0&row=0&design=spatial"
	for i := 0; i < 3; i++ {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if hits := srv.Stats.CacheHits.Load(); hits != 2 {
		t.Fatalf("backend cache hits = %d want 2", hits)
	}
}

func TestDBoxEndpoint(t *testing.T) {
	srv, hs := newPointsServer(t, 2000, 4096, 2048)
	resp, err := http.Get(hs.URL + "/dbox?canvas=main&layer=0&minx=1000&miny=500&maxx=1512&maxy=1012&codec=binary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("dbox: %s: %s", resp.Status, body)
	}
	dr, err := Decode(body, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Rows) == 0 {
		t.Fatal("empty dbox")
	}
	// All returned rows intersect the requested box (radius 1 pad).
	for _, r := range dr.Rows {
		x, y := r[1].AsFloat(), r[2].AsFloat()
		if x < 999 || x > 1513 || y < 499 || y > 1013 {
			t.Fatalf("row outside box: %v", r)
		}
	}
	if srv.Stats.BoxRequests.Load() != 1 {
		t.Fatal("box request not counted")
	}
}

func TestBadRequests(t *testing.T) {
	_, hs := newPointsServer(t, 50, 4096, 2048)
	for _, u := range []string{
		"/tile?canvas=main&layer=9&size=512&col=0&row=0",
		"/tile?canvas=nope&layer=0&size=512&col=0&row=0",
		"/tile?canvas=main&layer=0&size=0&col=0&row=0",
		"/tile?canvas=main&layer=0&size=512&col=-1&row=0",
		"/tile?canvas=main&layer=0&size=512&col=0&row=0&design=quantum",
		"/tile?canvas=main&layer=0&size=777&col=0&row=0&design=mapping", // no mapping table
		"/dbox?canvas=main&layer=0&minx=9&miny=0&maxx=0&maxy=1",
		"/dbox?canvas=main&layer=0&minx=abc&miny=0&maxx=1&maxy=1",
		"/tile?canvas=main&layer=abc&size=512&col=0&row=0",
	} {
		resp, err := http.Get(hs.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("GET %s should fail", u)
		}
	}
}

func TestUpdateEndpoint(t *testing.T) {
	srv, hs := newPointsServer(t, 100, 4096, 2048)
	// Warm the backend cache.
	resp, _ := http.Get(hs.URL + "/tile?canvas=main&layer=0&size=512&col=0&row=0")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if srv.BackendCache().Stats().Entries == 0 {
		t.Fatal("cache should be warm")
	}
	// Issue an update through the §4 update endpoint.
	req := UpdateRequest{
		SQL:  "UPDATE points SET val = ? WHERE id = ?",
		Args: []ArgValue{{Kind: storage.TFloat64, F: 99.5}, {Kind: storage.TInt64, I: 5}},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("update: %s: %s", resp.Status, b)
	}
	var out map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["affected"] != 1 {
		t.Fatalf("affected = %d", out["affected"])
	}
	// Update invalidates the backend cache.
	if srv.BackendCache().Stats().Entries != 0 {
		t.Fatal("cache not invalidated by update")
	}
	// GET is rejected; bad SQL is rejected.
	resp, _ = http.Get(hs.URL + "/update")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatal("GET /update should 405")
	}
	resp, _ = http.Post(hs.URL+"/update", "application/json", bytes.NewReader([]byte(`{"sql":"DROP nonsense"}`)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("bad SQL should fail")
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, hs := newPointsServer(t, 100, 4096, 2048)
	resp, _ := http.Get(hs.URL + "/tile?canvas=main&layer=0&size=512&col=0&row=0")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// Default is the versioned structured schema (v2).
	var snap StatsSnapshot
	getJSON(t, hs.URL+"/stats", &snap)
	if snap.V != 2 {
		t.Fatalf("stats version = %d, want 2", snap.V)
	}
	if snap.Serving.TileRequests != 1 || snap.Serving.RowsServed == 0 {
		t.Fatalf("v2 serving stats = %+v", snap.Serving)
	}
	if snap.Cache.L2 != nil {
		t.Fatal("L2 section present with no persistent store configured")
	}
	if snap.Cluster != nil {
		t.Fatal("cluster section present on a standalone node")
	}
	// ?v=1 keeps serving the legacy flat counter map.
	var stats map[string]int64
	getJSON(t, hs.URL+"/stats?v=1", &stats)
	if stats["tileRequests"] != 1 || stats["rowsServed"] == 0 {
		t.Fatalf("v1 stats = %v", stats)
	}
	if _, ok := stats["backendCacheBytes"]; !ok {
		t.Fatal("v1 flat map missing backendCacheBytes")
	}
}
