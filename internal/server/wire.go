// Package server implements the Kyrix backend server (Fig. 1): it
// receives viewport data requests from the frontend, consults a backend
// cache, and falls through to the DBMS using the fetching scheme's
// query shape. It also owns the precomputation phase at startup and the
// §4 update endpoint.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
)

// ColTypes is a list of column types that marshals to JSON as an array
// of integers. (A bare []storage.ColType is a []uint8, which
// encoding/json would base64-encode — opaque to a non-Go frontend.)
type ColTypes []storage.ColType

// MarshalJSON implements json.Marshaler.
func (ts ColTypes) MarshalJSON() ([]byte, error) {
	ints := make([]int, len(ts))
	for i, t := range ts {
		ints[i] = int(t)
	}
	return json.Marshal(ints)
}

// UnmarshalJSON implements json.Unmarshaler.
func (ts *ColTypes) UnmarshalJSON(data []byte) error {
	var ints []int
	if err := json.Unmarshal(data, &ints); err != nil {
		return err
	}
	out := make(ColTypes, len(ints))
	for i, v := range ints {
		out[i] = storage.ColType(v)
	}
	*ts = out
	return nil
}

// DataResponse is one data payload: the rows a tile or dynamic-box
// request returned.
type DataResponse struct {
	// Cols and Types describe the row schema.
	Cols  []string
	Types ColTypes
	Rows  []storage.Row
}

// Schema reconstructs the storage schema of the response.
func (dr *DataResponse) Schema() storage.Schema {
	s := make(storage.Schema, len(dr.Cols))
	for i := range dr.Cols {
		s[i] = storage.Column{Name: dr.Cols[i], Type: dr.Types[i]}
	}
	return s
}

// responseFromResult converts a query result, deriving column types
// from the first row (empty results carry declared fallback types).
func responseFromResult(res *sqldb.Result) *DataResponse {
	dr := &DataResponse{Cols: res.Cols, Types: make(ColTypes, len(res.Cols))}
	for i := range dr.Types {
		dr.Types[i] = storage.TFloat64
	}
	if len(res.Rows) > 0 {
		for i, v := range res.Rows[0] {
			dr.Types[i] = v.Kind
		}
	}
	dr.Rows = res.Rows
	return dr
}

// Codec names a wire encoding.
type Codec string

// Supported wire codecs. JSON matches what the real Kyrix frontend
// consumes; Binary is the compact alternative measured by ablation A5.
const (
	CodecJSON   Codec = "json"
	CodecBinary Codec = "binary"
)

// jsonWire is the JSON shape: row values as heterogeneous arrays.
type jsonWire struct {
	Cols  []string `json:"cols"`
	Types ColTypes `json:"types"`
	Rows  [][]any  `json:"rows"`
}

// Encode serializes dr with the chosen codec.
func Encode(dr *DataResponse, codec Codec) ([]byte, error) {
	switch codec {
	case CodecJSON, "":
		w := jsonWire{Cols: dr.Cols, Types: dr.Types, Rows: make([][]any, len(dr.Rows))}
		for i, row := range dr.Rows {
			vals := make([]any, len(row))
			for j, v := range row {
				switch v.Kind {
				case storage.TInt64:
					vals[j] = v.I
				case storage.TFloat64:
					vals[j] = v.F
				case storage.TString:
					vals[j] = v.S
				case storage.TBool:
					vals[j] = v.B
				}
			}
			w.Rows[i] = vals
		}
		return json.Marshal(w)
	case CodecBinary:
		var buf bytes.Buffer
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], uint64(len(dr.Cols)))
		buf.Write(tmp[:n])
		for i, c := range dr.Cols {
			n = binary.PutUvarint(tmp[:], uint64(len(c)))
			buf.Write(tmp[:n])
			buf.WriteString(c)
			buf.WriteByte(byte(dr.Types[i]))
		}
		n = binary.PutUvarint(tmp[:], uint64(len(dr.Rows)))
		buf.Write(tmp[:n])
		schema := dr.Schema()
		var rowBuf []byte
		for _, row := range dr.Rows {
			var err error
			rowBuf, err = storage.EncodeRow(rowBuf[:0], schema, row)
			if err != nil {
				return nil, err
			}
			buf.Write(rowBuf)
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("server: unknown codec %q", codec)
}

// Decode parses a payload produced by Encode.
func Decode(data []byte, codec Codec) (*DataResponse, error) {
	switch codec {
	case CodecJSON, "":
		var w jsonWire
		if err := json.Unmarshal(data, &w); err != nil {
			return nil, fmt.Errorf("server: decode json: %w", err)
		}
		dr := &DataResponse{Cols: w.Cols, Types: w.Types, Rows: make([]storage.Row, len(w.Rows))}
		for i, vals := range w.Rows {
			if len(vals) != len(w.Cols) {
				return nil, fmt.Errorf("server: row %d arity %d != %d", i, len(vals), len(w.Cols))
			}
			row := make(storage.Row, len(vals))
			for j, v := range vals {
				switch w.Types[j] {
				case storage.TInt64:
					f, ok := v.(float64)
					if !ok {
						return nil, fmt.Errorf("server: row %d col %d not numeric", i, j)
					}
					row[j] = storage.I64(int64(f))
				case storage.TFloat64:
					f, ok := v.(float64)
					if !ok {
						return nil, fmt.Errorf("server: row %d col %d not numeric", i, j)
					}
					row[j] = storage.F64(f)
				case storage.TString:
					s, ok := v.(string)
					if !ok {
						return nil, fmt.Errorf("server: row %d col %d not string", i, j)
					}
					row[j] = storage.Str(s)
				case storage.TBool:
					b, ok := v.(bool)
					if !ok {
						return nil, fmt.Errorf("server: row %d col %d not bool", i, j)
					}
					row[j] = storage.Bool(b)
				default:
					return nil, fmt.Errorf("server: row %d col %d unknown type", i, j)
				}
			}
			dr.Rows[i] = row
		}
		return dr, nil
	case CodecBinary:
		rd := bytes.NewReader(data)
		ncols, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("server: decode binary header: %w", err)
		}
		dr := &DataResponse{Cols: make([]string, ncols), Types: make(ColTypes, ncols)}
		for i := range dr.Cols {
			ln, err := binary.ReadUvarint(rd)
			if err != nil {
				return nil, fmt.Errorf("server: decode col name: %w", err)
			}
			name := make([]byte, ln)
			if _, err := rd.Read(name); err != nil {
				return nil, fmt.Errorf("server: decode col name: %w", err)
			}
			dr.Cols[i] = string(name)
			tb, err := rd.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("server: decode col type: %w", err)
			}
			dr.Types[i] = storage.ColType(tb)
		}
		nrows, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("server: decode row count: %w", err)
		}
		schema := dr.Schema()
		rest := data[len(data)-rd.Len():]
		off := 0
		dr.Rows = make([]storage.Row, 0, nrows)
		for i := uint64(0); i < nrows; i++ {
			row := make(storage.Row, len(schema))
			n, err := storage.DecodeRowNext(rest[off:], schema, row)
			if err != nil {
				return nil, fmt.Errorf("server: decode row %d: %w", i, err)
			}
			off += n
			dr.Rows = append(dr.Rows, row)
		}
		return dr, nil
	}
	return nil, fmt.Errorf("server: unknown codec %q", codec)
}
