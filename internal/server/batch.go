package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"kyrix/internal/geom"
)

// handleBatchDispatch routes POST /batch to the v1 buffered-JSON
// handler or the v2 framed-stream handler (batchv2.go) on the body's
// protocol version.
func (s *Server) handleBatchDispatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	v1, v2, err := decodeBatchBody(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The root span of the whole batch; per-item spans hang off it from
	// the worker goroutines. A trace header on the POST (the frontend's
	// interaction trace) stitches this server-side tree under it.
	ctx, sp := s.startRequestSpan(r, "http.batch")
	start := time.Now()
	defer func() {
		s.obs.stageBatch.Observe(time.Since(start))
		sp.End()
	}()
	if v2 != nil {
		sp.Attr("proto", v2.V)
		sp.Attr("items", len(v2.Items))
		s.handleBatchV2(ctx, w, v2)
		return
	}
	sp.Attr("proto", 1)
	sp.Attr("items", len(v1.Tiles))
	s.handleBatch(ctx, w, v1)
}

// MaxBatchTiles bounds one /batch request; the frontend splits larger
// fetches into multiple round trips (see frontend fetchTileBatches).
const MaxBatchTiles = 256

// TileRef addresses one tile within a batch request.
type TileRef struct {
	Col int `json:"col"`
	Row int `json:"row"`
}

// BatchRequest is the POST /batch body: many tiles of one layer
// fetched in a single round trip. Design and Codec default to
// "spatial" and JSON.
type BatchRequest struct {
	Canvas string    `json:"canvas"`
	Layer  int       `json:"layer"`
	Size   float64   `json:"size"`
	Design string    `json:"design,omitempty"`
	Codec  Codec     `json:"codec,omitempty"`
	Tiles  []TileRef `json:"tiles"`
}

// BatchTile is one tile's result inside a BatchResponse. Data is the
// tile payload encoded with the request codec (base64 inside the JSON
// envelope); Err is set instead when that tile failed.
type BatchTile struct {
	Col  int    `json:"col"`
	Row  int    `json:"row"`
	Data []byte `json:"data,omitempty"`
	Err  string `json:"err,omitempty"`
}

// BatchResponse is the POST /batch reply, tiles in request order.
type BatchResponse struct {
	Tiles []BatchTile `json:"tiles"`
}

// handleBatch answers many tile requests in one round trip (protocol
// v1: buffered JSON envelope, base64 payloads). Tiles are served
// concurrently under a bounded worker pool; each goes through the same
// cache + coalescing path as a single /tile request, so a batch
// overlapping another client's requests still runs each query once.
func (s *Server) handleBatch(ctx context.Context, w http.ResponseWriter, req *BatchRequest) {
	if len(req.Tiles) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Tiles) > MaxBatchTiles {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Tiles), MaxBatchTiles), http.StatusBadRequest)
		return
	}
	if req.Size <= 0 {
		http.Error(w, "bad size", http.StatusBadRequest)
		return
	}
	pl, ok := s.Layer(req.Canvas, req.Layer)
	if !ok || pl.Table == "" {
		http.Error(w, fmt.Sprintf("no data layer %s/%d", req.Canvas, req.Layer), http.StatusBadRequest)
		return
	}
	design := req.Design
	if design == "" {
		design = "spatial"
	}
	if design != "spatial" && design != "mapping" {
		// Request-level mistake: fail the batch like GET /tile would,
		// instead of fanning out N identical per-tile errors.
		http.Error(w, fmt.Sprintf("unknown design %q", design), http.StatusBadRequest)
		return
	}
	codec := req.Codec
	if codec == "" {
		codec = CodecJSON
	}
	if codec != CodecJSON && codec != CodecBinary {
		// Also request-level: without this every tile would run its
		// query and then fail to encode.
		http.Error(w, fmt.Sprintf("unknown codec %q", codec), http.StatusBadRequest)
		return
	}

	s.Stats.BatchRequests.Add(1)
	s.Stats.TileRequests.Add(int64(len(req.Tiles)))

	workers := s.opts.BatchConcurrency
	if workers <= 0 {
		// Automatic bound: scale with cores (tile queries are CPU-bound
		// in the embedded DB), floored so small machines still overlap
		// cache hits with query work.
		workers = runtime.GOMAXPROCS(0)
		if workers < 8 {
			workers = 8
		}
	}
	if workers > len(req.Tiles) {
		workers = len(req.Tiles)
	}
	out := BatchResponse{Tiles: make([]BatchTile, len(req.Tiles))}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, ref := range req.Tiles {
		bt := &out.Tiles[i]
		bt.Col, bt.Row = ref.Col, ref.Row
		if ref.Col < 0 || ref.Row < 0 {
			bt.Err = "bad col/row"
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(ref TileRef, bt *BatchTile) {
			defer func() { <-sem; wg.Done() }()
			// net/http's panic recovery only covers the connection
			// goroutine; a panic here would kill the whole process.
			// Contain it as a per-tile error instead.
			defer func() {
				if r := recover(); r != nil {
					bt.Err = fmt.Sprintf("internal: %v", r)
				}
			}()
			ictx, isp := s.tracer().Start(ctx, "item")
			isp.Attr("kind", "tile")
			itemStart := time.Now()
			payload, err := s.serveTile(ictx, pl, design, codec, req.Size, geom.TileID{Col: ref.Col, Row: ref.Row}, false)
			s.obs.stageItem.Observe(time.Since(itemStart))
			isp.End()
			if err != nil {
				bt.Err = err.Error()
				return
			}
			bt.Data = payload
		}(ref, bt)
	}
	wg.Wait()

	data, err := json.Marshal(&out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Count raw payload bytes like /tile and /dbox do, not the
	// base64-inflated JSON envelope, so batched and unbatched serving
	// report comparable bytesServed.
	var payloadBytes int64
	for i := range out.Tiles {
		payloadBytes += int64(len(out.Tiles[i].Data))
	}
	s.Stats.BytesServed.Add(payloadBytes)
	_, _ = w.Write(data)
}
