package server

import (
	"context"
	"strconv"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/geom"
	"kyrix/internal/storage"
	"kyrix/internal/wire"
)

// Protocol v3 frame encoding: per-frame compression and delta-encoded
// dynamic boxes. The full payload is always produced first (it is what
// the backend cache stores and what cache hits re-serve); v3 only
// decides how the payload crosses THIS wire, so a delta or compressed
// frame never pollutes the cache.

// deltaMinOverlap is the fraction of the new box's area its base must
// cover before delta encoding can pay off: below it most rows are
// entering anyway and the tombstone machinery is pure overhead.
const deltaMinOverlap = 0.25

// encodeFrameV3 turns one OK full payload into its v3 wire form:
// delta-encoded against the item's declared base when that pays off,
// then DEFLATE-compressed when allowed and the worth-it heuristic
// agrees. The fallback at every step is the previous form — worst
// case the frame ships exactly like v2.
func (s *Server) encodeFrameV3(ctx context.Context, canvas string, it BatchItem, codec Codec, full []byte, compress bool) ([]byte, FrameCodec) {
	body, fc := full, FrameRaw
	if it.Kind == "dbox" && it.Base != nil {
		_, sp := s.tracer().Start(ctx, "delta.plan")
		start := time.Now()
		delta, ok := s.planDeltaFrame(canvas, it, codec, full)
		s.obs.stageDelta.Observe(time.Since(start))
		sp.Attr("applied", ok)
		sp.End()
		if ok {
			body, fc = delta, FrameDelta
			s.Stats.DeltaFrames.Add(1)
		}
	}
	if compress && wire.ShouldCompress(body) {
		_, sp := s.tracer().Start(ctx, "compress")
		start := time.Now()
		cb, err := wire.Compress(body)
		s.obs.stageComp.Observe(time.Since(start))
		applied := err == nil && len(cb) < len(body)
		sp.Attr("applied", applied)
		sp.End()
		if applied {
			body = cb
			if fc == FrameDelta {
				fc = FrameDeltaFlate
			} else {
				fc = FrameFlate
			}
			s.Stats.CompressedFrames.Add(1)
		}
	}
	return body, fc
}

// planDeltaFrame attempts to delta-encode a dbox payload against the
// client's declared base. It returns ok=false — meaning "ship the full
// frame" — whenever the delta cannot be proven both correct and
// profitable:
//
//   - the base overlaps too little of the new box (the rows would
//     mostly be entering anyway),
//   - the base payload is no longer in the backend cache (recomputing
//     it would cost a database query to save wire bytes),
//   - the cached base does not hash to the client's declared id (the
//     client holds stale bytes, e.g. from before an /update),
//   - either payload's first column is not an integer id (no row
//     identity to diff on), or
//   - the encoded delta is not actually smaller than the full payload.
func (s *Server) planDeltaFrame(canvas string, it BatchItem, codec Codec, full []byte) ([]byte, bool) {
	base := it.Base
	baseBox, newBox := base.Box(), it.Box()
	if !baseBox.Valid() || baseBox.Area() <= 0 {
		return nil, false
	}
	inter := newBox.Intersection(baseBox)
	if !inter.Valid() || inter.Area() < deltaMinOverlap*newBox.Area() {
		return nil, false
	}
	baseID, err := strconv.ParseUint(base.ID, 16, 64)
	if err != nil {
		return nil, false
	}
	pl, ok := s.Layer(canvas, it.Layer)
	if !ok || pl.Table == "" {
		return nil, false
	}
	// An auto-LOD layer serves different pyramid levels at different
	// zooms, and a representative row keeps its id across levels while
	// its aggregate columns change — the same-id ⇒ same-content premise
	// of the row diff does not hold across levels. Delta only within one
	// level (both -1 for non-LOD layers, preserving their behavior).
	if pl.LODLevelFor(baseBox) != pl.LODLevelFor(newBox) {
		return nil, false
	}
	cached, ok := s.bcache.Peek(s.boxCacheKey(pl, codec, baseBox))
	if !ok {
		return nil, false
	}
	basePayload := cached.([]byte)
	if wire.PayloadID(basePayload) != baseID {
		return nil, false
	}
	baseDR, err := s.decodeMemoized(baseID, basePayload, codec)
	if err != nil || !hasIntIdentity(baseDR) {
		return nil, false
	}
	newID := wire.PayloadID(full)
	newDR, err := s.decodeMemoized(newID, full, codec)
	if err != nil || !hasIntIdentity(newDR) {
		return nil, false
	}

	newIDs := make(map[int64]bool, len(newDR.Rows))
	for _, row := range newDR.Rows {
		newIDs[row[0].AsInt()] = true
	}
	baseIDs := make(map[int64]bool, len(baseDR.Rows))
	var tombstones []int64
	for _, row := range baseDR.Rows {
		id := row[0].AsInt()
		baseIDs[id] = true
		if !newIDs[id] {
			tombstones = append(tombstones, id)
		}
	}
	// The diff is a set diff: duplicate ids within a box would collapse
	// in the maps and reconstruct a wrong row multiset client-side. A
	// layer emitting non-unique ids gets full frames instead.
	if len(newIDs) != len(newDR.Rows) || len(baseIDs) != len(baseDR.Rows) {
		return nil, false
	}
	var entering []storage.Row
	for _, row := range newDR.Rows {
		if !baseIDs[row[0].AsInt()] {
			entering = append(entering, row)
		}
	}
	enterPayload, err := Encode(&DataResponse{
		Cols: newDR.Cols, Types: newDR.Types, Rows: entering,
	}, codec)
	if err != nil {
		return nil, false
	}
	body := wire.EncodeDelta(wire.Delta{
		FullLen:    len(full),
		NewID:      newID,
		Tombstones: tombstones,
		Entering:   enterPayload,
	})
	if len(body) >= len(full) {
		return nil, false
	}
	return body, true
}

// decodeMemoized resolves a dbox payload's decoded rows through the
// content-addressed delta memo. Query execution seeds the memo (the
// rows are in hand before they are encoded — see runQuery), so on a
// pan chain both the base and the new payload are usually hits and the
// delta plan runs decode-free; a miss (memo eviction, server restart
// mid-session) decodes and re-seeds. Decoded rows are immutable and
// the key is the payload's own hash, so entries can never go stale.
func (s *Server) decodeMemoized(id uint64, payload []byte, codec Codec) (*DataResponse, error) {
	key := memoKey(id, codec)
	if v, ok := s.deltaMemo.Get(key); ok {
		return v.(*DataResponse), nil
	}
	dr, err := Decode(payload, codec)
	if err != nil {
		return nil, err
	}
	s.deltaMemo.Put(key, dr, int64(len(payload)))
	return dr, nil
}

// memoizeDecoded seeds the delta memo with rows decoded (or produced)
// elsewhere, charged by the size of the payload they decode from —
// the decoded form scales with it, so the memo's byte budget tracks
// real residency.
func (s *Server) memoizeDecoded(id uint64, codec Codec, dr *DataResponse, payloadLen int) {
	s.deltaMemo.Put(memoKey(id, codec), dr, int64(payloadLen))
}

func memoKey(id uint64, codec Codec) string {
	return strconv.FormatUint(id, 16) + "/" + string(codec)
}

// hasIntIdentity reports whether a payload's rows carry the integer
// identity column the delta diff keys on.
func hasIntIdentity(dr *DataResponse) bool {
	if len(dr.Cols) == 0 || len(dr.Types) == 0 {
		return false
	}
	if len(dr.Rows) == 0 {
		// No rows to diff; the type fallback makes Types[0]
		// unreliable, but an empty side is still diffable.
		return true
	}
	return dr.Types[0] == storage.TInt64
}

// boxCacheKey is the backend-cache key of one dynamic-box payload —
// shared by serveBox (store/lookup) and the delta planner (base
// lookup), so the two can never disagree on where a base lives.
func (s *Server) boxCacheKey(pl *fetch.PhysicalLayer, codec Codec, box geom.Rect) string {
	return codecBoxKey(codec, layerKey(pl.CanvasID, pl.LayerIdx), box)
}

func codecBoxKey(codec Codec, layer string, box geom.Rect) string {
	return string(codec) + "/" + fetch.BoxKeyOf(layer, box)
}
