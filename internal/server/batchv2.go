package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"kyrix/internal/geom"
)

// Batch wire protocol v2: a length-prefixed binary framed stream.
//
// The v1 /batch reply is one buffered JSON envelope with base64 tile
// payloads — ~33% encoding overhead and whole-response memory on both
// sides. v2 streams raw payloads as frames, flushed as each sub-result
// completes, and covers both static tiles and dynamic boxes so a
// multi-layer canvas viewport is exactly one round trip.
//
// Stream layout (all integers are unsigned varints unless noted):
//
//	header:  magic "KYXB" (4 bytes) | version (1 byte, 0x02) | item count
//	frame:   index | kind (1 byte) | status (1 byte) | payload length | payload
//
// Frames arrive in completion order, not request order; index maps a
// frame back to its item. The stream ends after exactly `item count`
// frames — EOF before that is a truncated stream. For status OK the
// payload is the item's data encoded with the request codec (the same
// bytes a single GET /tile or /dbox would return); for error statuses
// it is a UTF-8 message.
//
// Versioning rules: the magic identifies the framed-batch family; the
// version byte is bumped on any layout change AND on any new frame
// kind or status, and decoders reject versions, kinds and statuses
// they do not know — better a loud error than silently dropping a
// sub-result the server believed it delivered.

// BatchV2Magic opens every v2 batch stream.
const BatchV2Magic = "KYXB"

// BatchV2Version is the current framed-stream version byte.
const BatchV2Version = 2

// BatchV2ContentType is the response content type of a v2 batch
// stream; the frontend uses it for content negotiation (a v1-only
// server replies with application/json or an error instead).
const BatchV2ContentType = "application/x-kyrix-batch-v2"

// MaxBatchItems bounds one v2 /batch request, like MaxBatchTiles for
// v1; the frontend splits larger viewports into multiple round trips.
const MaxBatchItems = MaxBatchTiles

// maxFramePayload bounds a decoded frame payload (a corrupt length
// prefix must not translate into an unbounded allocation).
const maxFramePayload = 1 << 28

// FrameKind tags what a v2 frame carries.
type FrameKind byte

// Frame kinds.
const (
	FrameTile FrameKind = 0
	FrameDBox FrameKind = 1
)

// FrameStatus is the per-frame outcome, the framed analogue of the
// HTTP status a single /tile or /dbox request would have returned.
type FrameStatus byte

// Frame statuses.
const (
	FrameOK         FrameStatus = 0
	FrameBadRequest FrameStatus = 1
	FrameInternal   FrameStatus = 2
)

// Frame is one decoded v2 stream frame.
type Frame struct {
	Index   int
	Kind    FrameKind
	Status  FrameStatus
	Payload []byte
}

// BatchItem is one sub-request of a v2 batch: a tile (Col/Row/Size/
// Design) or a dynamic box (MinX..MaxY), each addressing its own layer
// of the request's canvas.
type BatchItem struct {
	Kind   string  `json:"kind"` // "tile" | "dbox"
	Layer  int     `json:"layer"`
	Size   float64 `json:"size,omitempty"`
	Design string  `json:"design,omitempty"`
	Col    int     `json:"col,omitempty"`
	Row    int     `json:"row,omitempty"`
	MinX   float64 `json:"minx,omitempty"`
	MinY   float64 `json:"miny,omitempty"`
	MaxX   float64 `json:"maxx,omitempty"`
	MaxY   float64 `json:"maxy,omitempty"`
}

// Box returns the dbox item's rectangle.
func (it BatchItem) Box() geom.Rect {
	return geom.Rect{MinX: it.MinX, MinY: it.MinY, MaxX: it.MaxX, MaxY: it.MaxY}
}

// BatchRequestV2 is the POST /batch body for protocol v2: one
// viewport's worth of tile and dbox sub-requests against one canvas,
// answered as a binary framed stream. V must be 2 — a v1 server
// ignores the unknown fields, sees no tiles and rejects the request,
// which is what the frontend's fallback detection keys on.
type BatchRequestV2 struct {
	V      int         `json:"v"`
	Canvas string      `json:"canvas"`
	Codec  Codec       `json:"codec,omitempty"`
	Items  []BatchItem `json:"items"`
}

// WriteBatchHeader writes the v2 stream header for n frames.
func WriteBatchHeader(w io.Writer, n int) error {
	var buf [4 + 1 + binary.MaxVarintLen64]byte
	copy(buf[:4], BatchV2Magic)
	buf[4] = BatchV2Version
	ln := 5 + binary.PutUvarint(buf[5:], uint64(n))
	_, err := w.Write(buf[:ln])
	return err
}

// ReadBatchHeader reads and validates the v2 stream header, returning
// the frame count.
func ReadBatchHeader(br *bufio.Reader) (int, error) {
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("server: batch v2 header: %w", err)
	}
	if string(magic[:4]) != BatchV2Magic {
		return 0, fmt.Errorf("server: batch v2 bad magic %q", magic[:4])
	}
	if magic[4] != BatchV2Version {
		return 0, fmt.Errorf("server: batch v2 unknown version %d", magic[4])
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("server: batch v2 frame count: %w", err)
	}
	if n > maxFramePayload {
		return 0, fmt.Errorf("server: batch v2 absurd frame count %d", n)
	}
	return int(n), nil
}

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	var buf [2*binary.MaxVarintLen64 + 2]byte
	ln := binary.PutUvarint(buf[:], uint64(f.Index))
	buf[ln] = byte(f.Kind)
	buf[ln+1] = byte(f.Status)
	ln += 2
	ln += binary.PutUvarint(buf[ln:], uint64(len(f.Payload)))
	if _, err := w.Write(buf[:ln]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads one frame. io.EOF at the first byte is returned
// verbatim (a clean between-frames boundary); any other failure is a
// truncated or corrupt stream.
func ReadFrame(br *bufio.Reader) (Frame, error) {
	var f Frame
	idx, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return f, io.EOF
		}
		return f, fmt.Errorf("server: batch v2 frame index: %w", err)
	}
	f.Index = int(idx)
	kb, err := br.ReadByte()
	if err != nil {
		return f, fmt.Errorf("server: batch v2 frame kind: %w", eofIsUnexpected(err))
	}
	f.Kind = FrameKind(kb)
	if f.Kind != FrameTile && f.Kind != FrameDBox {
		return f, fmt.Errorf("server: batch v2 unknown frame kind %d", kb)
	}
	sb, err := br.ReadByte()
	if err != nil {
		return f, fmt.Errorf("server: batch v2 frame status: %w", eofIsUnexpected(err))
	}
	f.Status = FrameStatus(sb)
	if f.Status > FrameInternal {
		return f, fmt.Errorf("server: batch v2 unknown frame status %d", sb)
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return f, fmt.Errorf("server: batch v2 payload length: %w", eofIsUnexpected(err))
	}
	if plen > maxFramePayload {
		return f, fmt.Errorf("server: batch v2 payload of %d bytes exceeds limit", plen)
	}
	f.Payload = make([]byte, plen)
	if _, err := io.ReadFull(br, f.Payload); err != nil {
		return f, fmt.Errorf("server: batch v2 payload: %w", err)
	}
	return f, nil
}

// eofIsUnexpected maps a mid-frame EOF to ErrUnexpectedEOF so callers
// can always distinguish truncation from a clean end of stream.
func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// frameWriter serializes concurrent frame writes onto one HTTP
// response, flushing after each frame so the client renders sub-
// results as they complete instead of waiting for the whole batch.
type frameWriter struct {
	mu    sync.Mutex
	w     io.Writer
	fl    http.Flusher
	err   error // first write error; later writes are dropped
	bytes int64 // payload bytes written (raw, comparable to /tile)
}

func newFrameWriter(w http.ResponseWriter) *frameWriter {
	fw := &frameWriter{w: w}
	if fl, ok := w.(http.Flusher); ok {
		fw.fl = fl
	}
	return fw
}

func (fw *frameWriter) writeFrame(f Frame) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.err != nil {
		return // client went away; drain remaining work silently
	}
	if err := WriteFrame(fw.w, f); err != nil {
		fw.err = err
		return
	}
	fw.bytes += int64(len(f.Payload))
	if fw.fl != nil {
		fw.fl.Flush()
	}
}

// handleBatchV2 answers a v2 batch: tile and dbox sub-requests against
// one canvas, served concurrently under the bounded worker pool and
// streamed back as binary frames in completion order. Every item goes
// through the same cache + coalescing path as its single-request
// equivalent.
func (s *Server) handleBatchV2(w http.ResponseWriter, req *BatchRequestV2) {
	if len(req.Items) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Items) > MaxBatchItems {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Items), MaxBatchItems), http.StatusBadRequest)
		return
	}
	codec := req.Codec
	if codec == "" {
		codec = CodecJSON
	}
	if codec != CodecJSON && codec != CodecBinary {
		http.Error(w, fmt.Sprintf("unknown codec %q", codec), http.StatusBadRequest)
		return
	}

	s.Stats.BatchRequests.Add(1)
	for i := range req.Items {
		if req.Items[i].Kind == "dbox" {
			s.Stats.BoxRequests.Add(1)
		} else {
			s.Stats.TileRequests.Add(1)
		}
	}

	workers := s.opts.BatchConcurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 8 {
			workers = 8
		}
	}
	if workers > len(req.Items) {
		workers = len(req.Items)
	}

	// Past this point errors are per-frame: the header commits the
	// stream, so an item failure becomes an error frame, never an HTTP
	// error code.
	w.Header().Set("Content-Type", BatchV2ContentType)
	fw := newFrameWriter(w)
	if err := WriteBatchHeader(w, len(req.Items)); err != nil {
		return // client went away before the header landed
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range req.Items {
		wg.Add(1)
		sem <- struct{}{}
		go func(idx int, it BatchItem) {
			defer func() { <-sem; wg.Done() }()
			f := Frame{Index: idx, Kind: FrameTile}
			if it.Kind == "dbox" {
				f.Kind = FrameDBox
			}
			// Contain panics like v1 does: net/http's recovery only
			// covers the connection goroutine.
			defer func() {
				if r := recover(); r != nil {
					f.Status, f.Payload = FrameInternal, []byte(fmt.Sprintf("internal: %v", r))
				}
				fw.writeFrame(f)
			}()
			payload, err := s.serveItem(req.Canvas, it, codec)
			if err != nil {
				f.Payload = []byte(err.Error())
				if httpStatusOf(err) == http.StatusBadRequest {
					f.Status = FrameBadRequest
				} else {
					f.Status = FrameInternal
				}
				return
			}
			f.Payload = payload
		}(i, req.Items[i])
	}
	wg.Wait()
	s.Stats.BytesServed.Add(fw.bytes)
}

// serveItem resolves and serves one v2 batch item through the same
// cache/coalescing path as the single-request endpoints.
func (s *Server) serveItem(canvas string, it BatchItem, codec Codec) ([]byte, error) {
	pl, ok := s.Layer(canvas, it.Layer)
	if !ok || pl.Table == "" {
		return nil, badRequestError{fmt.Errorf("no data layer %s/%d", canvas, it.Layer)}
	}
	switch it.Kind {
	case "tile", "":
		if it.Size <= 0 {
			return nil, badRequestError{fmt.Errorf("bad size %g", it.Size)}
		}
		if it.Col < 0 || it.Row < 0 {
			return nil, badRequestError{fmt.Errorf("bad col/row %d/%d", it.Col, it.Row)}
		}
		design := it.Design
		if design == "" {
			design = "spatial"
		}
		return s.serveTile(pl, design, codec, it.Size, geom.TileID{Col: it.Col, Row: it.Row})
	case "dbox":
		box := it.Box()
		if !box.Valid() {
			return nil, badRequestError{fmt.Errorf("invalid box %+v", box)}
		}
		return s.serveBox(pl, codec, box)
	}
	return nil, badRequestError{fmt.Errorf("unknown item kind %q", it.Kind)}
}

// batchEnvelope is the union of the v1 and v2 request shapes, so one
// JSON parse serves both the version dispatch and the request itself.
type batchEnvelope struct {
	V      int         `json:"v"`
	Canvas string      `json:"canvas"`
	Codec  Codec       `json:"codec,omitempty"`
	Layer  int         `json:"layer"`
	Size   float64     `json:"size"`
	Design string      `json:"design,omitempty"`
	Tiles  []TileRef   `json:"tiles"`
	Items  []BatchItem `json:"items"`
}

// decodeBatchBody reads one /batch POST body and dispatches on the
// protocol version: absent or zero "v" is a v1 tiles-only request,
// v=2 is the framed-stream protocol. Exactly one of the returns is
// non-nil on success.
func decodeBatchBody(w http.ResponseWriter, r *http.Request) (*BatchRequest, *BatchRequestV2, error) {
	// A valid request is a few KB (MaxBatchItems refs plus header
	// fields); cap the body so an oversized request is rejected while
	// decoding instead of allocated in full first.
	var env batchEnvelope
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&env); err != nil {
		return nil, nil, err
	}
	switch env.V {
	case 0, 1:
		// Protocol v1: the buffered JSON envelope. An explicit "v":1
		// means the same thing as the historical version-less body.
		return &BatchRequest{
			Canvas: env.Canvas, Layer: env.Layer, Size: env.Size,
			Design: env.Design, Codec: env.Codec, Tiles: env.Tiles,
		}, nil, nil
	case BatchV2Version:
		return nil, &BatchRequestV2{
			V: env.V, Canvas: env.Canvas, Codec: env.Codec, Items: env.Items,
		}, nil
	}
	return nil, nil, fmt.Errorf("unsupported batch protocol v%d", env.V)
}
