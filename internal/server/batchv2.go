package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"kyrix/internal/geom"
	"kyrix/internal/obs"
	"kyrix/internal/wire"
)

// Batch wire protocols v2/v3: a length-prefixed binary framed stream.
//
// The v1 /batch reply is one buffered JSON envelope with base64 tile
// payloads — ~33% encoding overhead and whole-response memory on both
// sides. v2 streams raw payloads as frames, flushed as each sub-result
// completes, and covers both static tiles and dynamic boxes so a
// multi-layer canvas viewport is exactly one round trip. v3 keeps the
// same stream shape and adds a per-frame codec byte: OK payloads may be
// DEFLATE-compressed, and dynamic-box frames may be delta-encoded
// against a base box the client declares it already holds (only the
// rows entering the new box cross the wire, plus a tombstone list for
// the rows leaving).
//
// The frame codec itself (header/frame layout, compression, the delta
// format) lives in the internal/wire package shared with the frontend;
// this file owns the HTTP endpoint, version dispatch and the
// per-item serving path. See the package doc of internal/wire for the
// byte-level layout and kyrix's root package doc for the protocol
// overview.

// BatchV2Magic opens every framed batch stream (v2 and v3 share it;
// the version byte after the magic separates them).
const BatchV2Magic = wire.Magic

// Framed-stream protocol versions.
const (
	BatchV2Version = wire.V2
	BatchV3Version = wire.V3
)

// Content types of the framed batch responses; the frontend uses them
// for content negotiation (a v1-only server replies with
// application/json or an error instead).
const (
	BatchV2ContentType = "application/x-kyrix-batch-v2"
	BatchV3ContentType = "application/x-kyrix-batch-v3"
)

// MaxBatchItems bounds one framed /batch request, like MaxBatchTiles
// for v1; the frontend splits larger viewports into multiple round
// trips (overlapped client-side past this limit).
const MaxBatchItems = MaxBatchTiles

// maxFramePayload bounds a decoded frame payload, both as read and
// after decompression (a corrupt length prefix or a hostile DEFLATE
// stream must not become an unbounded allocation).
const maxFramePayload = wire.MaxFramePayload

// Frame types and enums are shared with the frontend through
// internal/wire; the aliases keep the server API (and its callers)
// stable across the extraction.
type (
	// FrameKind tags what a frame carries.
	FrameKind = wire.FrameKind
	// FrameStatus is the per-frame outcome.
	FrameStatus = wire.FrameStatus
	// FrameCodec is the v3 per-frame payload encoding.
	FrameCodec = wire.FrameCodec
	// Frame is one decoded stream frame.
	Frame = wire.Frame
)

// Frame kinds.
const (
	FrameTile = wire.FrameTile
	FrameDBox = wire.FrameDBox
)

// Frame statuses.
const (
	FrameOK         = wire.FrameOK
	FrameBadRequest = wire.FrameBadRequest
	FrameInternal   = wire.FrameInternal
)

// v3 frame codecs.
const (
	FrameRaw        = wire.CodecRaw
	FrameFlate      = wire.CodecFlate
	FrameDelta      = wire.CodecDelta
	FrameDeltaFlate = wire.CodecDeltaFlate
)

// BaseRef declares the dynamic box a client already holds, offered as
// the delta base for a v3 dbox item: its bounds plus the identity of
// the exact payload bytes (wire.PayloadID, hex-encoded — JSON numbers
// cannot carry a full uint64). The server only delta-encodes when its
// cached copy of that box hashes identically.
type BaseRef struct {
	MinX float64 `json:"minx"`
	MinY float64 `json:"miny"`
	MaxX float64 `json:"maxx"`
	MaxY float64 `json:"maxy"`
	ID   string  `json:"id"`
}

// Box returns the base's rectangle.
func (b BaseRef) Box() geom.Rect {
	return geom.Rect{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}
}

// BatchItem is one sub-request of a framed batch: a tile (Col/Row/
// Size/Design) or a dynamic box (MinX..MaxY), each addressing its own
// layer of the request's canvas. Base (v3, dbox only) declares a delta
// base; v2 servers ignore it.
type BatchItem struct {
	Kind   string   `json:"kind"` // "tile" | "dbox"
	Layer  int      `json:"layer"`
	Size   float64  `json:"size,omitempty"`
	Design string   `json:"design,omitempty"`
	Col    int      `json:"col,omitempty"`
	Row    int      `json:"row,omitempty"`
	MinX   float64  `json:"minx,omitempty"`
	MinY   float64  `json:"miny,omitempty"`
	MaxX   float64  `json:"maxx,omitempty"`
	MaxY   float64  `json:"maxy,omitempty"`
	Base   *BaseRef `json:"base,omitempty"`
}

// Box returns the dbox item's rectangle.
func (it BatchItem) Box() geom.Rect {
	return geom.Rect{MinX: it.MinX, MinY: it.MinY, MaxX: it.MaxX, MaxY: it.MaxY}
}

// Compression modes for BatchRequestV2.Comp.
const (
	// CompFlate (the v3 default, also selected by "") lets the server
	// DEFLATE-compress OK payloads that pass the worth-it heuristic.
	CompFlate = "flate"
	// CompOff forces raw payloads (ablations, pre-compressed codecs).
	CompOff = "off"
)

// BatchRequestV2 is the POST /batch body for the framed protocols: one
// viewport's worth of tile and dbox sub-requests against one canvas,
// answered as a binary framed stream. V selects the stream version (2
// or 3) — a v1 server ignores the unknown fields, sees no tiles and
// rejects the request, and a v2 server rejects v=3 at dispatch, which
// is what the frontend's downgrade ladder keys on. Comp ("flate"|
// "off", v3 only) negotiates per-request compression.
type BatchRequestV2 struct {
	V      int         `json:"v"`
	Canvas string      `json:"canvas"`
	Codec  Codec       `json:"codec,omitempty"`
	Comp   string      `json:"comp,omitempty"`
	Items  []BatchItem `json:"items"`
}

// WriteBatchHeader writes a v2 stream header for n frames. (v3 streams
// are written through wire.WriteHeader directly.)
func WriteBatchHeader(w io.Writer, n int) error {
	return wire.WriteHeader(w, wire.V2, n)
}

// ReadBatchHeader reads and validates a v2 stream header, returning
// the frame count. A v3 stream is rejected here: callers that can
// consume both versions use wire.ReadHeader.
func ReadBatchHeader(br *bufio.Reader) (int, error) {
	v, n, err := wire.ReadHeader(br)
	if err != nil {
		return 0, fmt.Errorf("server: batch: %w", err)
	}
	if v != wire.V2 {
		return 0, fmt.Errorf("server: batch v2 reader got version %d stream", v)
	}
	return n, nil
}

// WriteFrame writes one v2 frame.
func WriteFrame(w io.Writer, f Frame) error {
	return wire.WriteFrame(w, wire.V2, f)
}

// ReadFrame reads one v2 frame. io.EOF at the first byte is returned
// verbatim (a clean between-frames boundary); any other failure is a
// truncated or corrupt stream.
func ReadFrame(br *bufio.Reader) (Frame, error) {
	return wire.ReadFrame(br, wire.V2)
}

// frameWriter serializes concurrent frame writes onto one HTTP
// response, flushing after each frame so the client renders sub-
// results as they complete instead of waiting for the whole batch.
type frameWriter struct {
	version byte
	// flushHist, when set, gets one sample per frame covering the
	// serialized write + flush; assigned once before any worker runs.
	flushHist *obs.Histogram
	mu        sync.Mutex
	w         io.Writer    // guarded by mu
	fl        http.Flusher // guarded by mu
	err       error        // guarded by mu; first write error; later writes are dropped
	// bytes counts payload bytes as written (post-compression/delta);
	// rawBytes counts the full-frame equivalent (what a raw v2 frame
	// would have carried) — the pair is the stream's compression ratio.
	bytes    int64 // guarded by mu
	rawBytes int64 // guarded by mu
}

func newFrameWriter(w http.ResponseWriter, version byte) *frameWriter {
	fw := &frameWriter{version: version, w: w}
	if fl, ok := w.(http.Flusher); ok {
		fw.fl = fl
	}
	return fw
}

func (fw *frameWriter) writeFrame(f Frame, rawLen int) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.err != nil {
		return // client went away; drain remaining work silently
	}
	start := time.Now()
	if err := wire.WriteFrame(fw.w, fw.version, f); err != nil {
		fw.err = err
		return
	}
	fw.bytes += int64(len(f.Payload))
	fw.rawBytes += int64(rawLen)
	if fw.fl != nil {
		fw.fl.Flush()
	}
	fw.flushHist.Observe(time.Since(start))
}

// totals reads the stream's byte counters under the writer lock (the
// batch has joined its workers by the time this is called, but the
// guarded fields are machine-checked — see internal/analysis).
func (fw *frameWriter) totals() (bytes, rawBytes int64) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.bytes, fw.rawBytes
}

// handleBatchV2 answers a framed batch (v2 or v3): tile and dbox
// sub-requests against one canvas, served concurrently under the
// bounded worker pool and streamed back as binary frames in completion
// order. Every item goes through the same cache + coalescing path as
// its single-request equivalent; v3 additionally compresses and
// delta-encodes OK payloads per frame (batchv3.go).
func (s *Server) handleBatchV2(ctx context.Context, w http.ResponseWriter, req *BatchRequestV2) {
	if len(req.Items) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Items) > MaxBatchItems {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Items), MaxBatchItems), http.StatusBadRequest)
		return
	}
	codec := req.Codec
	if codec == "" {
		codec = CodecJSON
	}
	if codec != CodecJSON && codec != CodecBinary {
		http.Error(w, fmt.Sprintf("unknown codec %q", codec), http.StatusBadRequest)
		return
	}
	version := byte(wire.V2)
	compress := false
	if req.V == BatchV3Version {
		version = wire.V3
		switch req.Comp {
		case "", CompFlate:
			compress = true
		case CompOff:
		default:
			http.Error(w, fmt.Sprintf("unknown compression %q", req.Comp), http.StatusBadRequest)
			return
		}
	}

	s.Stats.BatchRequests.Add(1)
	for i := range req.Items {
		if req.Items[i].Kind == "dbox" {
			s.Stats.BoxRequests.Add(1)
		} else {
			s.Stats.TileRequests.Add(1)
		}
	}

	workers := s.opts.BatchConcurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 8 {
			workers = 8
		}
	}
	if workers > len(req.Items) {
		workers = len(req.Items)
	}

	// Past this point errors are per-frame: the header commits the
	// stream, so an item failure becomes an error frame, never an HTTP
	// error code.
	if version == wire.V3 {
		w.Header().Set("Content-Type", BatchV3ContentType)
	} else {
		w.Header().Set("Content-Type", BatchV2ContentType)
	}
	fw := newFrameWriter(w, version)
	fw.flushHist = s.obs.stageFlush
	if err := wire.WriteHeader(w, version, len(req.Items)); err != nil {
		return // client went away before the header landed
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range req.Items {
		wg.Add(1)
		sem <- struct{}{}
		go func(idx int, it BatchItem) {
			defer func() { <-sem; wg.Done() }()
			f := Frame{Index: idx, Kind: FrameTile}
			if it.Kind == "dbox" {
				f.Kind = FrameDBox
			}
			rawLen := 0
			// Contain panics like v1 does: net/http's recovery only
			// covers the connection goroutine.
			defer func() {
				if r := recover(); r != nil {
					f.Status, f.Codec, f.Payload = FrameInternal, FrameRaw, []byte(fmt.Sprintf("internal: %v", r))
					rawLen = len(f.Payload)
				}
				fw.writeFrame(f, rawLen)
			}()
			if version == wire.V3 && it.Kind == "dbox" && it.Base != nil {
				if s.ownsDBox(req.Canvas, it, codec) {
					// Delta-eligible: hold the epoch read lock across
					// query + delta plan so an /update cannot slip
					// between them and pair a post-update result with
					// a pre-update base.
					s.epochMu.RLock()
					defer s.epochMu.RUnlock()
				} else {
					// Non-owned in a cluster: the payload may arrive
					// from a peer at a different epoch, and the
					// content-blind id diff cannot prove a cross-epoch
					// delta safe. Dropping the base ships a full frame
					// (and keeps the peer hop outside epochMu, where a
					// gossiped epoch adoption needs the write lock).
					it.Base = nil
				}
			}
			ictx, isp := s.tracer().Start(ctx, "item")
			isp.Attr("kind", it.Kind)
			isp.Attr("layer", it.Layer)
			itemStart := time.Now()
			defer func() {
				s.obs.stageItem.Observe(time.Since(itemStart))
				isp.End()
			}()
			payload, err := s.serveItem(ictx, req.Canvas, it, codec, version == wire.V3, false)
			if err != nil {
				f.Payload = []byte(err.Error())
				rawLen = len(f.Payload)
				if httpStatusOf(err) == http.StatusBadRequest {
					f.Status = FrameBadRequest
				} else {
					f.Status = FrameInternal
				}
				return
			}
			f.Payload = payload
			rawLen = len(payload)
			if version == wire.V3 {
				f.Payload, f.Codec = s.encodeFrameV3(ictx, req.Canvas, it, codec, payload, compress)
			}
		}(i, req.Items[i])
	}
	wg.Wait()
	// BytesServed stays the raw-payload count (comparable to /tile and
	// to v2); the wire-side count and savings land in their own stats.
	wireBytes, rawBytes := fw.totals()
	s.Stats.BytesServed.Add(rawBytes)
	s.Stats.WireBytes.Add(wireBytes)
}

// serveItem resolves and serves one framed batch item through the same
// cache/coalescing path as the single-request endpoints. memoDBox asks
// dbox queries to park decoded rows for the v3 delta planner; localOnly
// (peer-originated fills) suppresses cluster forwarding.
func (s *Server) serveItem(ctx context.Context, canvas string, it BatchItem, codec Codec, memoDBox, localOnly bool) ([]byte, error) {
	pl, ok := s.Layer(canvas, it.Layer)
	if !ok || pl.Table == "" {
		return nil, badRequestError{fmt.Errorf("no data layer %s/%d", canvas, it.Layer)}
	}
	switch it.Kind {
	case "tile", "":
		if it.Size <= 0 {
			return nil, badRequestError{fmt.Errorf("bad size %g", it.Size)}
		}
		if it.Col < 0 || it.Row < 0 {
			return nil, badRequestError{fmt.Errorf("bad col/row %d/%d", it.Col, it.Row)}
		}
		design := it.Design
		if design == "" {
			design = "spatial"
		}
		return s.serveTile(ctx, pl, design, codec, it.Size, geom.TileID{Col: it.Col, Row: it.Row}, localOnly)
	case "dbox":
		box := it.Box()
		if !box.Valid() {
			return nil, badRequestError{fmt.Errorf("invalid box %+v", box)}
		}
		return s.serveBox(ctx, pl, codec, box, memoDBox, localOnly)
	}
	return nil, badRequestError{fmt.Errorf("unknown item kind %q", it.Kind)}
}

// batchEnvelope is the union of the v1 and v2/v3 request shapes, so one
// JSON parse serves both the version dispatch and the request itself.
type batchEnvelope struct {
	V      int         `json:"v"`
	Canvas string      `json:"canvas"`
	Codec  Codec       `json:"codec,omitempty"`
	Comp   string      `json:"comp,omitempty"`
	Layer  int         `json:"layer"`
	Size   float64     `json:"size"`
	Design string      `json:"design,omitempty"`
	Tiles  []TileRef   `json:"tiles"`
	Items  []BatchItem `json:"items"`
}

// decodeBatchBody reads one /batch POST body and dispatches on the
// protocol version: absent or zero "v" is a v1 tiles-only request,
// v=2 and v=3 are the framed-stream protocols. Exactly one of the
// returns is non-nil on success.
func decodeBatchBody(w http.ResponseWriter, r *http.Request) (*BatchRequest, *BatchRequestV2, error) {
	// A valid request is a few KB (MaxBatchItems refs plus header
	// fields); cap the body so an oversized request is rejected while
	// decoding instead of allocated in full first.
	var env batchEnvelope
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&env); err != nil {
		return nil, nil, err
	}
	switch env.V {
	case 0, 1:
		// Protocol v1: the buffered JSON envelope. An explicit "v":1
		// means the same thing as the historical version-less body.
		return &BatchRequest{
			Canvas: env.Canvas, Layer: env.Layer, Size: env.Size,
			Design: env.Design, Codec: env.Codec, Tiles: env.Tiles,
		}, nil, nil
	case BatchV2Version, BatchV3Version:
		return nil, &BatchRequestV2{
			V: env.V, Canvas: env.Canvas, Codec: env.Codec,
			Comp: env.Comp, Items: env.Items,
		}, nil
	}
	return nil, nil, fmt.Errorf("unsupported batch protocol v%d", env.V)
}
