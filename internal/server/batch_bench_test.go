package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"

	"kyrix/internal/geom"
	"kyrix/internal/wire"
)

// The batch benchmarks compare the /batch wire protocols on two
// workloads. The viewport workload is 16 tiles plus 2 dynamic boxes
// (v1 cannot batch dboxes, so it spends two extra GET /dbox round
// trips — exactly the gap v2 closes; v3 compresses the same frames).
// The pan-zoom workload is a sequence of heavily overlapping dynamic
// boxes — the case v3's delta frames target. All of them report
// wire-B/op (bytes on the wire per operation) and the v3 ones also
// report ratio (wire bytes / raw payload bytes), so the benchstat
// regression job in CI tracks wire size and compression ratio across
// PRs next to the timing columns.

func benchBatchServer(b *testing.B) (*Server, string, func(path string) []byte) {
	srv, hs := newPointsServer(b, 4000, 4096, 2048)
	get := func(path string) []byte {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("GET %s: %s: %s", path, resp.Status, data)
		}
		return data
	}
	return srv, hs.URL, get
}

func benchTileRefs() []TileRef {
	refs := make([]TileRef, 0, 16)
	for col := 0; col < 8; col++ {
		for row := 0; row < 2; row++ {
			refs = append(refs, TileRef{Col: col, Row: row})
		}
	}
	return refs
}

// BenchmarkBatchV1 serves the workload the pre-v2 way: one buffered
// JSON /batch for the tiles plus one GET /dbox per layer box.
func BenchmarkBatchV1(b *testing.B) {
	srv, base, get := benchBatchServer(b)
	body, _ := json.Marshal(BatchRequest{
		Canvas: "main", Layer: 0, Size: 512, Codec: CodecBinary,
		Tiles: benchTileRefs(),
	})
	boxes := []string{
		"/dbox?canvas=main&layer=0&minx=0&miny=0&maxx=900&maxy=700&codec=binary",
		"/dbox?canvas=main&layer=0&minx=1000&miny=800&maxx=1900&maxy=1500&codec=binary",
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wire int64
	for i := 0; i < b.N; i++ {
		srv.BackendCache().Clear()
		resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("batch: %s: %s", resp.Status, data)
		}
		wire += int64(len(data))
		var out BatchResponse
		if err := json.Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
		for _, bt := range out.Tiles {
			if bt.Err != "" {
				b.Fatalf("tile %d/%d: %s", bt.Col, bt.Row, bt.Err)
			}
		}
		for _, u := range boxes {
			wire += int64(len(get(u)))
		}
	}
	b.SetBytes(wire / int64(b.N))
	b.ReportMetric(float64(wire)/float64(b.N), "wire-B/op")
}

// BenchmarkBatchV2 serves the same workload as one framed-stream round
// trip: 16 tile frames and 2 dbox frames, no base64, no buffering.
func BenchmarkBatchV2(b *testing.B) {
	srv, base, _ := benchBatchServer(b)
	req := BatchRequestV2{V: BatchV2Version, Canvas: "main", Codec: CodecBinary}
	for _, ref := range benchTileRefs() {
		req.Items = append(req.Items, BatchItem{
			Kind: "tile", Layer: 0, Size: 512, Col: ref.Col, Row: ref.Row,
		})
	}
	req.Items = append(req.Items,
		BatchItem{Kind: "dbox", Layer: 0, MinX: 0, MinY: 0, MaxX: 900, MaxY: 700},
		BatchItem{Kind: "dbox", Layer: 0, MinX: 1000, MinY: 800, MaxX: 1900, MaxY: 1500},
	)
	body, _ := json.Marshal(req)
	b.ReportAllocs()
	b.ResetTimer()
	var wire int64
	for i := 0; i < b.N; i++ {
		srv.BackendCache().Clear()
		resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != BatchV2ContentType {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			b.Fatalf("batch v2: %s: %s", resp.Status, data)
		}
		cr := &countingRd{r: resp.Body}
		br := bufio.NewReader(cr)
		n, err := ReadBatchHeader(br)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			f, err := ReadFrame(br)
			if err != nil {
				b.Fatal(err)
			}
			if f.Status != FrameOK {
				b.Fatalf("frame %d: %s", f.Index, f.Payload)
			}
		}
		resp.Body.Close()
		wire += cr.n
	}
	b.SetBytes(wire / int64(b.N))
	b.ReportMetric(float64(wire)/float64(b.N), "wire-B/op")
}

// BenchmarkBatchV3 serves the viewport workload as one v3 stream with
// per-frame compression: same frames as v2, fewer bytes on the wire.
func BenchmarkBatchV3(b *testing.B) {
	srv, base, _ := benchBatchServer(b)
	req := BatchRequestV2{V: BatchV3Version, Canvas: "main", Codec: CodecBinary}
	for _, ref := range benchTileRefs() {
		req.Items = append(req.Items, BatchItem{
			Kind: "tile", Layer: 0, Size: 512, Col: ref.Col, Row: ref.Row,
		})
	}
	req.Items = append(req.Items,
		BatchItem{Kind: "dbox", Layer: 0, MinX: 0, MinY: 0, MaxX: 900, MaxY: 700},
		BatchItem{Kind: "dbox", Layer: 0, MinX: 1000, MinY: 800, MaxX: 1900, MaxY: 1500},
	)
	body, _ := json.Marshal(req)
	b.ReportAllocs()
	b.ResetTimer()
	var wireBytes, rawBytes int64
	for i := 0; i < b.N; i++ {
		srv.BackendCache().Clear()
		w, raw := postFramedOnce(b, base, body, wire.V3, nil)
		wireBytes += w
		rawBytes += raw
	}
	b.SetBytes(wireBytes / int64(b.N))
	b.ReportMetric(float64(wireBytes)/float64(b.N), "wire-B/op")
	b.ReportMetric(float64(wireBytes)/float64(rawBytes), "ratio")
}

// panBoxes is the pan-zoom workload: a viewport-sized box panning
// right in steps that overlap ~78% — the Kyrix-S observation that
// successive viewports of a session share most of their rows.
func panBoxes() []geom.Rect {
	boxes := make([]geom.Rect, 8)
	for i := range boxes {
		x := float64(i) * 200
		boxes[i] = geom.Rect{MinX: x, MinY: 0, MaxX: x + 900, MaxY: 700}
	}
	return boxes
}

// BenchmarkBatchPanZoomV2 replays the pan sequence over v2: every step
// ships the full new box.
func BenchmarkBatchPanZoomV2(b *testing.B) {
	_, base, _ := benchBatchServer(b)
	boxes := panBoxes()
	bodies := make([][]byte, len(boxes))
	for i, box := range boxes {
		bodies[i], _ = json.Marshal(BatchRequestV2{
			V: BatchV2Version, Canvas: "main", Codec: CodecBinary,
			Items: []BatchItem{{Kind: "dbox", Layer: 0,
				MinX: box.MinX, MinY: box.MinY, MaxX: box.MaxX, MaxY: box.MaxY}},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wireBytes int64
	for i := 0; i < b.N; i++ {
		for _, body := range bodies {
			w, _ := postFramedOnce(b, base, body, wire.V2, nil)
			wireBytes += w
		}
	}
	b.SetBytes(wireBytes / int64(b.N))
	b.ReportMetric(float64(wireBytes)/float64(b.N), "wire-B/op")
}

// BenchmarkBatchPanZoomV3 replays the same pans over v3 with delta
// frames: after the first step only entering rows and tombstones cross
// the wire. ratio is wire bytes over the full-payload equivalent.
func BenchmarkBatchPanZoomV3(b *testing.B) {
	_, base, _ := benchBatchServer(b)
	boxes := panBoxes()
	b.ReportAllocs()
	b.ResetTimer()
	var wireBytes, rawBytes int64
	for i := 0; i < b.N; i++ {
		var prev *BaseRef
		for _, box := range boxes {
			it := BatchItem{Kind: "dbox", Layer: 0,
				MinX: box.MinX, MinY: box.MinY, MaxX: box.MaxX, MaxY: box.MaxY,
				Base: prev}
			body, _ := json.Marshal(BatchRequestV2{
				V: BatchV3Version, Canvas: "main", Codec: CodecBinary,
				Items: []BatchItem{it},
			})
			var nextID uint64
			w, raw := postFramedOnce(b, base, body, wire.V3, &nextID)
			wireBytes += w
			rawBytes += raw
			prev = &BaseRef{MinX: box.MinX, MinY: box.MinY, MaxX: box.MaxX, MaxY: box.MaxY,
				ID: strconv.FormatUint(nextID, 16)}
		}
	}
	b.SetBytes(wireBytes / int64(b.N))
	b.ReportMetric(float64(wireBytes)/float64(b.N), "wire-B/op")
	b.ReportMetric(float64(wireBytes)/float64(rawBytes), "ratio")
}

// postFramedOnce posts one framed batch and drains the stream,
// returning (wire bytes, raw-equivalent payload bytes). When nextID is
// non-nil it receives the payload identity of the first dbox frame —
// the delta base id the next pan step declares.
func postFramedOnce(b *testing.B, base string, body []byte, version byte, nextID *uint64) (int64, int64) {
	b.Helper()
	resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		b.Fatalf("batch: %s: %s", resp.Status, data)
	}
	cr := &countingRd{r: resp.Body}
	br := bufio.NewReader(cr)
	v, n, err := wire.ReadHeader(br)
	if err != nil || v != version {
		b.Fatalf("header: v=%d err=%v", v, err)
	}
	var raw int64
	for j := 0; j < n; j++ {
		f, err := wire.ReadFrame(br, v)
		if err != nil {
			b.Fatal(err)
		}
		if f.Status != FrameOK {
			b.Fatalf("frame %d: %s", f.Index, f.Payload)
		}
		payload := f.Payload
		if f.Codec.Compressed() {
			if payload, err = wire.Decompress(payload, maxFramePayload); err != nil {
				b.Fatal(err)
			}
		}
		if f.Codec.IsDelta() {
			d, err := wire.DecodeDelta(payload)
			if err != nil {
				b.Fatal(err)
			}
			raw += int64(d.FullLen)
			if nextID != nil && f.Kind == FrameDBox {
				*nextID = d.NewID
			}
			continue
		}
		raw += int64(len(payload))
		if nextID != nil && f.Kind == FrameDBox {
			*nextID = wire.PayloadID(payload)
		}
	}
	return cr.n, raw
}

type countingRd struct {
	r io.Reader
	n int64
}

func (c *countingRd) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
