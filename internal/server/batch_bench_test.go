package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// The batch benchmarks compare the two /batch wire protocols on one
// fixed viewport-sized workload: 16 tiles plus 2 dynamic boxes (v1
// cannot batch dboxes, so it spends two extra GET /dbox round trips —
// exactly the gap v2 closes). bytes/op reports bytes on the wire.
// They are wired into CI's benchstat regression job next to the cache
// contention benchmark.

func benchBatchServer(b *testing.B) (*Server, string, func(path string) []byte) {
	srv, hs := newPointsServer(b, 4000, 4096, 2048)
	get := func(path string) []byte {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("GET %s: %s: %s", path, resp.Status, data)
		}
		return data
	}
	return srv, hs.URL, get
}

func benchTileRefs() []TileRef {
	refs := make([]TileRef, 0, 16)
	for col := 0; col < 8; col++ {
		for row := 0; row < 2; row++ {
			refs = append(refs, TileRef{Col: col, Row: row})
		}
	}
	return refs
}

// BenchmarkBatchV1 serves the workload the pre-v2 way: one buffered
// JSON /batch for the tiles plus one GET /dbox per layer box.
func BenchmarkBatchV1(b *testing.B) {
	srv, base, get := benchBatchServer(b)
	body, _ := json.Marshal(BatchRequest{
		Canvas: "main", Layer: 0, Size: 512, Codec: CodecBinary,
		Tiles: benchTileRefs(),
	})
	boxes := []string{
		"/dbox?canvas=main&layer=0&minx=0&miny=0&maxx=900&maxy=700&codec=binary",
		"/dbox?canvas=main&layer=0&minx=1000&miny=800&maxx=1900&maxy=1500&codec=binary",
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wire int64
	for i := 0; i < b.N; i++ {
		srv.BackendCache().Clear()
		resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("batch: %s: %s", resp.Status, data)
		}
		wire += int64(len(data))
		var out BatchResponse
		if err := json.Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
		for _, bt := range out.Tiles {
			if bt.Err != "" {
				b.Fatalf("tile %d/%d: %s", bt.Col, bt.Row, bt.Err)
			}
		}
		for _, u := range boxes {
			wire += int64(len(get(u)))
		}
	}
	b.SetBytes(wire / int64(b.N))
}

// BenchmarkBatchV2 serves the same workload as one framed-stream round
// trip: 16 tile frames and 2 dbox frames, no base64, no buffering.
func BenchmarkBatchV2(b *testing.B) {
	srv, base, _ := benchBatchServer(b)
	req := BatchRequestV2{V: BatchV2Version, Canvas: "main", Codec: CodecBinary}
	for _, ref := range benchTileRefs() {
		req.Items = append(req.Items, BatchItem{
			Kind: "tile", Layer: 0, Size: 512, Col: ref.Col, Row: ref.Row,
		})
	}
	req.Items = append(req.Items,
		BatchItem{Kind: "dbox", Layer: 0, MinX: 0, MinY: 0, MaxX: 900, MaxY: 700},
		BatchItem{Kind: "dbox", Layer: 0, MinX: 1000, MinY: 800, MaxX: 1900, MaxY: 1500},
	)
	body, _ := json.Marshal(req)
	b.ReportAllocs()
	b.ResetTimer()
	var wire int64
	for i := 0; i < b.N; i++ {
		srv.BackendCache().Clear()
		resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != BatchV2ContentType {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			b.Fatalf("batch v2: %s: %s", resp.Status, data)
		}
		cr := &countingRd{r: resp.Body}
		br := bufio.NewReader(cr)
		n, err := ReadBatchHeader(br)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			f, err := ReadFrame(br)
			if err != nil {
				b.Fatal(err)
			}
			if f.Status != FrameOK {
				b.Fatalf("frame %d: %s", f.Index, f.Payload)
			}
		}
		resp.Body.Close()
		wire += cr.n
	}
	b.SetBytes(wire / int64(b.N))
}

type countingRd struct {
	r io.Reader
	n int64
}

func (c *countingRd) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
