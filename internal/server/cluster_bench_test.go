package server

import (
	"fmt"
	"testing"

	"kyrix/internal/geom"
)

// BenchmarkClusterFill measures the peer cache-fill path on a two-node
// in-process cluster: every iteration cold-starts both caches and
// pulls a viewport's worth of tiles through ONE node, so roughly half
// the keys are non-owned and fill over the peer hop. Custom metrics:
// peer-fill-ratio (peer fills / requests — the fraction of traffic the
// ring pushed across the wire) and db-q/req (database queries per
// request cluster-wide — stays ~1 per unique key regardless of which
// node was asked, the cross-node singleflight contract). Tracked by
// the CI bench-regression job.
func BenchmarkClusterFill(b *testing.B) {
	nodes := newTestCluster(b, 2, 2000, nil)
	front := nodes[0]

	var tiles []geom.TileID
	for col := 0; col < 8; col++ {
		for row := 0; row < 4; row++ {
			tiles = append(tiles, geom.TileID{Col: col, Row: row})
		}
	}
	// Warm connections + plan caches once so the measured loop is the
	// fill path, not TCP setup.
	for _, tid := range tiles {
		if _, err := getTileErr(front.url, tid); err != nil {
			b.Fatal(err)
		}
	}

	var fills, reqs, dbq int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, n := range nodes {
			n.srv.bcache.Clear()
		}
		fillsBefore := front.srv.cluster.Stats.PeerFills.Load()
		dbqBefore := nodes[0].srv.Stats.DBQueries.Load() + nodes[1].srv.Stats.DBQueries.Load()
		b.StartTimer()
		for _, tid := range tiles {
			if _, err := getTileErr(front.url, tid); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		fills += front.srv.cluster.Stats.PeerFills.Load() - fillsBefore
		reqs += int64(len(tiles))
		dbq += nodes[0].srv.Stats.DBQueries.Load() + nodes[1].srv.Stats.DBQueries.Load() - dbqBefore
		b.StartTimer()
	}
	if reqs > 0 {
		b.ReportMetric(float64(fills)/float64(reqs), "peer-fill-ratio")
		b.ReportMetric(float64(dbq)/float64(reqs), "db-q/req")
	}
	if fills == 0 {
		b.Fatal(fmt.Errorf("no peer fills happened — ring routed nothing"))
	}
}
