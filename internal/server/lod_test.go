package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"kyrix/internal/fetch"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

// newLODServer is newPointsServer with the layer declared "lod": "auto"
// and a small row budget so zoomed-out windows must route to the
// pyramid.
func newLODServer(t testing.TB, n int) (*Server, *httptest.Server) {
	t.Helper()
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	d := workload.Uniform(n, 8192, 4096, 11)
	for _, p := range d.Points {
		if err := db.InsertRow("points", storage.Row{
			storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &spec.App{
		Name: "pts",
		Canvases: []spec.Canvas{{
			ID: "main", W: 8192, H: 4096,
			Transforms: []spec.Transform{{
				ID: "t", Query: "SELECT * FROM points",
				Columns: []spec.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
				},
			}},
			Layers: []spec.Layer{{
				TransformID: "t",
				Placement:   &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:    "dots",
				LOD:         "auto",
			}},
		}},
		InitialCanvas: "main", InitialX: 4096, InitialY: 2048,
		ViewportW: 512, ViewportH: 512,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, ca, Options{
		CacheBytes: 8 << 20,
		Precompute: fetch.Options{
			LODRowBudget: 64,
			LODBaseCell:  64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func getBox(t *testing.T, hs *httptest.Server, minx, miny, maxx, maxy float64) *DataResponse {
	t.Helper()
	url := fmt.Sprintf("%s/dbox?canvas=main&layer=0&minx=%g&miny=%g&maxx=%g&maxy=%g&codec=binary",
		hs.URL, minx, miny, maxx, maxy)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("dbox: %s: %s", resp.Status, body)
	}
	dr, err := Decode(body, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	return dr
}

func TestServeBoxRoutesToLOD(t *testing.T) {
	const n = 5000
	srv, hs := newLODServer(t, n)

	// A small window is under the row budget at this density: raw rows,
	// no aggregate columns.
	small := getBox(t, hs, 1000, 1000, 1256, 1256)
	if srv.Stats.LODQueries.Load() != 0 {
		t.Fatal("small window should not touch the pyramid")
	}
	for _, c := range small.Cols {
		if c == "lod_count" {
			t.Fatalf("raw response carries aggregate columns: %v", small.Cols)
		}
	}

	// The full canvas would cover all n raw rows; with the pyramid it
	// must return at most RowBudget aggregate rows.
	full := getBox(t, hs, 0, 0, 8192, 4096)
	if srv.Stats.LODQueries.Load() == 0 {
		t.Fatal("full-canvas window did not route to the pyramid")
	}
	if len(full.Rows) == 0 || len(full.Rows) > 64 {
		t.Fatalf("full-canvas response has %d rows, want 1..64 (the budget); raw would be ~%d", len(full.Rows), n)
	}
	countIdx := -1
	for i, c := range full.Cols {
		if c == "lod_count" {
			countIdx = i
		}
	}
	if countIdx < 0 {
		t.Fatalf("pyramid response missing lod_count: %v", full.Cols)
	}
	// The aggregate rows still cover every base row.
	var total int64
	for _, r := range full.Rows {
		total += r[countIdx].AsInt()
	}
	if total != n {
		t.Fatalf("aggregate counts sum to %d, want %d", total, n)
	}
	// Base-schema prefix intact: id/x/y decode exactly like raw rows.
	for _, r := range full.Rows {
		x, y := r[1].AsFloat(), r[2].AsFloat()
		if x < 0 || x > 8192 || y < 0 || y > 4096 {
			t.Fatalf("representative row off canvas: %v", r)
		}
	}
}

func TestSpatialTileRoutesToLOD(t *testing.T) {
	srv, hs := newLODServer(t, 5000)
	// A huge virtual tile (size = whole canvas) is a zoomed-out window.
	resp, err := http.Get(hs.URL + "/tile?canvas=main&layer=0&size=8192&col=0&row=0&design=spatial")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("tile: %s: %s", resp.Status, body)
	}
	dr, err := Decode(body, CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Stats.LODQueries.Load() == 0 {
		t.Fatal("zoomed-out spatial tile did not route to the pyramid")
	}
	if len(dr.Rows) == 0 || len(dr.Rows) > 64 {
		t.Fatalf("tile rows = %d, want 1..64", len(dr.Rows))
	}
}

func TestLODLayerMeta(t *testing.T) {
	_, hs := newLODServer(t, 2000)
	var meta AppMeta
	getJSON(t, hs.URL+"/app", &meta)
	lm := meta.Canvases[0].Layers[0]
	if !lm.LOD {
		t.Fatalf("layer meta does not advertise LOD: %+v", lm)
	}
	if lm.LODLevels <= 0 {
		t.Fatalf("LODLevels = %d, want > 0", lm.LODLevels)
	}
}
