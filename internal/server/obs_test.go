package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/geom"
	"kyrix/internal/obs"
	"kyrix/internal/sqldb"
)

// newPointsServerOpts is newPointsServer with caller-controlled options
// (the obs tests toggle tracing and the flight recorder).
func newPointsServerOpts(t testing.TB, n int, mutate func(o *Options)) (*Server, *httptest.Server) {
	t.Helper()
	db, ca := newPointsApp(t, n, 4096, 2048)
	opts := Options{
		CacheBytes: 8 << 20,
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    []float64{512},
			MappingIndex: sqldb.IndexBTree,
		},
	}
	if mutate != nil {
		mutate(&opts)
	}
	srv, err := New(db, ca, opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func scrape(t testing.TB, url string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s: %s", resp.Status, body)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("parse exposition: %v\n%s", err, body)
	}
	return exp
}

// sampleValue finds the first sample matching name and the given
// label=value filter pairs; -1 when absent.
func sampleValue(exp *obs.Exposition, name string, kv ...string) float64 {
	for _, s := range exp.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				ok = false
				break
			}
		}
		if ok {
			return s.Value
		}
	}
	return -1
}

// TestMetricsEndpoint: after real traffic, /metrics carries the stage
// histograms and every counter family, and the values agree with /stats
// (both render the same atomics).
func TestMetricsEndpoint(t *testing.T) {
	srv, hs := newPointsServerOpts(t, 500, nil)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(hs.URL + "/tile?canvas=main&layer=0&size=512&col=0&row=0")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	exp := scrape(t, hs.URL)
	for _, want := range []string{
		"kyrix_stage_duration_seconds", "kyrix_requests_total",
		"kyrix_cache_events_total", "kyrix_db_queries_total",
		"kyrix_rows_served_total", "kyrix_bytes_total",
		"kyrix_uptime_seconds", "kyrix_build_info",
	} {
		if !exp.HasFamily(want) {
			t.Errorf("family %s missing from /metrics", want)
		}
	}

	// Stage histogram: the item stage saw all three requests, db.query
	// exactly one (two were cache hits).
	if got := sampleValue(exp, "kyrix_stage_duration_seconds_count", "stage", "item"); got != 3 {
		t.Errorf("item stage count = %v, want 3", got)
	}
	if got := sampleValue(exp, "kyrix_stage_duration_seconds_count", "stage", "db.query"); got != 1 {
		t.Errorf("db.query stage count = %v, want 1", got)
	}

	// Single-source check: /metrics and /stats must agree.
	var snap StatsSnapshot
	getJSON(t, hs.URL+"/stats", &snap)
	reqTile := sampleValue(exp, "kyrix_requests_total", "kind", "tile")
	dbq := sampleValue(exp, "kyrix_db_queries_total")
	// /stats is re-fetched after the scrape, so >= covers the window.
	if int64(reqTile) > snap.Serving.TileRequests || int64(dbq) != snap.Serving.DBQueries {
		t.Errorf("metrics/stats disagree: tile %v vs %d, dbq %v vs %d",
			reqTile, snap.Serving.TileRequests, dbq, snap.Serving.DBQueries)
	}
	if snap.UptimeSeconds <= 0 {
		t.Errorf("uptimeSeconds = %v, want > 0", snap.UptimeSeconds)
	}
	if snap.Build.GoVersion == "" || snap.Build.Version == "" {
		t.Errorf("build info incomplete: %+v", snap.Build)
	}
	_ = srv
}

// TestStatsV1Golden pins the legacy ?v=1 flat map's exact key set on a
// standalone node: v2 additions (uptime, build info) must never leak
// into the schema old scrapers parse.
func TestStatsV1Golden(t *testing.T) {
	_, hs := newPointsServerOpts(t, 100, nil)
	resp, err := http.Get(hs.URL + "/tile?canvas=main&layer=0&size=512&col=0&row=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var stats map[string]int64
	getJSON(t, hs.URL+"/stats?v=1", &stats)
	got := make([]string, 0, len(stats))
	for k := range stats {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{
		"backendCacheAdmitted", "backendCacheBytes", "backendCacheHits",
		"backendCacheMisses", "backendCacheRejected", "backendCacheShards",
		"batchRequests", "boxRequests", "bytesServed", "cacheHits",
		"coalescedHits", "compressedFrames", "dbQueries", "dbRowsScanned",
		"deltaFrames", "lodQueries", "queryNanos", "rowsServed",
		"tileRequests", "updates", "wireBytes",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("v1 key set drifted:\n got %v\nwant %v", got, want)
	}
}

// TestObsDisabled: with tracing off the span machinery is fully elided
// (empty flight recorder) but the metrics histograms keep recording.
func TestObsDisabled(t *testing.T) {
	srv, hs := newPointsServerOpts(t, 200, func(o *Options) {
		o.Obs.DisableTracing = true
	})
	resp, err := http.Get(hs.URL + "/tile?canvas=main&layer=0&size=512&col=0&row=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if rec := srv.FlightRecorder(); rec != nil {
		t.Fatal("flight recorder present with tracing disabled")
	}
	var snap obs.Snapshot
	getJSON(t, hs.URL+"/debug/requests", &snap)
	if len(snap.Recent) != 0 || len(snap.Slowest) != 0 {
		t.Fatalf("debug snapshot not empty: %d recent, %d slowest", len(snap.Recent), len(snap.Slowest))
	}
	n := sampleValue(scrape(t, hs.URL), "kyrix_stage_duration_seconds_count", "stage", "item")
	if n != 1 {
		t.Fatalf("item stage count with tracing off = %v, want 1 (histograms must stay live)", n)
	}
}

// findSpan walks a span tree depth-first for the first span named name.
func findSpan(d *obs.SpanData, name string) *obs.SpanData {
	if d == nil {
		return nil
	}
	if d.Name == name {
		return d
	}
	for _, c := range d.Children {
		if hit := findSpan(c, name); hit != nil {
			return hit
		}
	}
	return nil
}

// TestStitchedTraceAcrossPeerFill is the tracing acceptance test: a
// client-traced tile request served through a cross-node peer fill
// yields ONE trace in the requester's /debug/requests — the client's
// trace ID on the root, the peer.fetch hop under it, and grafted inside
// it the owner node's peer.serve subtree down to its db.query span.
func TestStitchedTraceAcrossPeerFill(t *testing.T) {
	nodes := newTestCluster(t, 2, 500, nil)
	owner, other, tid := ownerAndOther(t, nodes)

	const clientTrace = "abc123-77" // traceID "abc123", client span "77"
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/tile?canvas=main&layer=0&size=512&col=%d&row=%d", other.url, tid.Col, tid.Row), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, clientTrace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tile: %s: %s", resp.Status, body)
	}

	// The requester's flight recorder, via the HTTP surface.
	var snap obs.Snapshot
	getJSON(t, other.url+"/debug/requests", &snap)
	var root *obs.SpanData
	for _, d := range snap.Recent {
		if d.TraceID == "abc123" && d.Name == "http.tile" {
			root = d
			break
		}
	}
	if root == nil {
		t.Fatalf("no http.tile trace with the client's trace ID in /debug/requests (%d recent)", len(snap.Recent))
	}
	if root.Parent != "77" {
		t.Errorf("root parent = %q, want the client span id 77", root.Parent)
	}
	fetchSp := findSpan(root, "peer.fetch")
	if fetchSp == nil {
		t.Fatalf("trace has no peer.fetch span: %+v", root)
	}
	serveSp := findSpan(fetchSp, "peer.serve")
	if serveSp == nil {
		t.Fatal("owner's peer.serve subtree was not grafted under peer.fetch")
	}
	if serveSp.TraceID != "abc123" {
		t.Errorf("grafted subtree trace ID = %q, want abc123", serveSp.TraceID)
	}
	dbSp := findSpan(serveSp, "db.query")
	if dbSp == nil {
		t.Fatal("stitched trace does not reach the owner's db.query span")
	}
	if dbSp.TraceID != "abc123" {
		t.Errorf("db.query trace ID = %q, want abc123", dbSp.TraceID)
	}

	// The owner's own recorder holds the same serve under the same trace.
	ownerSnap := owner.srv.FlightRecorder().Snapshot()
	foundServe := false
	for _, d := range ownerSnap.Recent {
		if d.TraceID == "abc123" && d.Name == "peer.serve" {
			foundServe = true
		}
	}
	if !foundServe {
		t.Error("owner's flight recorder is missing the peer.serve root")
	}
}

// TestMetricsScrapeDuringBatchRace hammers /metrics and /debug/requests
// while framed batches are live — the -race proof that scrape-time
// collection and the recorder never conflict with the serving path.
func TestMetricsScrapeDuringBatchRace(t *testing.T) {
	_, hs := newPointsServerOpts(t, 1000, func(o *Options) {
		o.Obs.FlightRecorderSize = 4 // force ring wraparound under load
	})
	var items []BatchItem
	for col := 0; col < 4; col++ {
		items = append(items, BatchItem{Kind: "tile", Layer: 0, Size: 512, Col: col, Row: 0})
	}
	items = append(items, BatchItem{Kind: "dbox", Layer: 0, MinX: 0, MinY: 0, MaxX: 900, MaxY: 700})
	body, _ := json.Marshal(BatchRequestV2{V: BatchV3Version, Canvas: "main", Items: items})

	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, 8*rounds)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(hs.URL+"/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for _, path := range []string{"/metrics", "/debug/requests", "/stats"} {
					resp, err := http.Get(hs.URL + path)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := sampleValue(scrape(t, hs.URL), "kyrix_requests_total", "kind", "batch"); got != 4*rounds {
		t.Fatalf("batch count = %v, want %d", got, 4*rounds)
	}
}

// BenchmarkObsOverhead measures the served hot tile path (GET /tile, L1
// cache hit) with tracing on vs off — the bench-regression job tracks
// the on/off gap (acceptance: tracing costs < 3% at p50 on this path).
// The request goes over real HTTP because that is what a hot tile costs
// in production; BenchmarkObsOverheadDirect isolates the per-span cost.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			_, hs := newPointsServerOpts(b, 2000, func(o *Options) {
				o.Obs.DisableTracing = mode.disable
			})
			url := hs.URL + "/tile?canvas=main&layer=0&size=512&col=1&row=1"
			get := func() {
				resp, err := http.Get(url)
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("tile: %s", resp.Status)
				}
			}
			get() // warm the cache; every iteration below is an L1 hit
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				get()
			}
		})
	}
}

// BenchmarkObsOverheadDirect is the microbenchmark companion: the bare
// serve call plus the handler's per-request obs work (root span + stage
// sample), no HTTP. The on/off delta is the absolute per-request cost of
// tracing — nanoseconds, not a ratio against transport time.
func BenchmarkObsOverheadDirect(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			srv, _ := newPointsServerOpts(b, 2000, func(o *Options) {
				o.Obs.DisableTracing = mode.disable
			})
			pl, ok := srv.Layer("main", 0)
			if !ok {
				b.Fatal("no layer")
			}
			tid := geom.TileID{Col: 1, Row: 1}
			ctx := context.Background()
			if _, err := srv.serveTile(ctx, pl, "spatial", CodecJSON, 512, tid, false); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sctx, sp := srv.tracer().Start(ctx, "http.tile")
				start := time.Now()
				if _, err := srv.serveTile(sctx, pl, "spatial", CodecJSON, 512, tid, false); err != nil {
					b.Fatal(err)
				}
				srv.obs.stageItem.Observe(time.Since(start))
				sp.End()
			}
		})
	}
}
