package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"

	"kyrix/internal/obs"
)

// Observability: this file wires internal/obs into the serving pipeline.
// Spans thread through the request path on context (see serveTile /
// cachedQuery / peerQuery), per-stage latencies land in registry-owned
// histograms, and everything /stats already counted is re-exposed at
// /metrics through a scrape-time collector — one set of atomic counters,
// two renderings. /debug/requests serves the flight recorder.

// ObsOptions configures the server's observability layer. The zero value
// enables tracing with a 64-deep flight recorder and no pprof.
type ObsOptions struct {
	// DisableTracing turns off span creation and the flight recorder.
	// /metrics histograms and counters stay on (they cost two atomic
	// adds per stage); only the span/trace machinery is elided, which
	// the hot tile path then pays a single nil check for.
	DisableTracing bool
	// FlightRecorderSize is N for both the most-recent ring and the
	// slowest set served at /debug/requests (0 = 64).
	FlightRecorderSize int
	// Pprof mounts net/http/pprof under /debug/pprof/ on the server
	// mux. Off by default: the profiling surface is opt-in, like the
	// -pprof flag on kyrix-server.
	Pprof bool
}

// serverObs bundles the server's observability state: the tracer (nil
// when tracing is disabled — every Start call is then a nil check), the
// metrics registry, and pre-resolved histogram handles so the hot path
// never takes the registry lock.
type serverObs struct {
	tracer *obs.Tracer
	reg    *obs.Registry

	stageBatch   *obs.Histogram
	stageItem    *obs.Histogram
	stageL2Read  *obs.Histogram
	stageDB      *obs.Histogram
	stagePeer    *obs.Histogram
	stageDelta   *obs.Histogram
	stageComp    *obs.Histogram
	stageFlush   *obs.Histogram
	stageUpdate  *obs.Histogram
	stagePeerSrv *obs.Histogram

	start time.Time
}

const stageHistName = "kyrix_stage_duration_seconds"

// initObs builds the observability layer. Called once from New; the
// collector closure reads the server's live counters at scrape time, so
// /metrics and /stats can never disagree on a value.
func (s *Server) initObs() {
	reg := obs.NewRegistry()
	const help = "Per-stage serving latency."
	s.obs = serverObs{
		reg:          reg,
		stageBatch:   reg.Histogram(stageHistName, help, "stage", "batch"),
		stageItem:    reg.Histogram(stageHistName, help, "stage", "item"),
		stageL2Read:  reg.Histogram(stageHistName, help, "stage", "l2.read"),
		stageDB:      reg.Histogram(stageHistName, help, "stage", "db.query"),
		stagePeer:    reg.Histogram(stageHistName, help, "stage", "peer.fetch"),
		stageDelta:   reg.Histogram(stageHistName, help, "stage", "delta.plan"),
		stageComp:    reg.Histogram(stageHistName, help, "stage", "compress"),
		stageFlush:   reg.Histogram(stageHistName, help, "stage", "flush"),
		stageUpdate:  reg.Histogram(stageHistName, help, "stage", "update"),
		stagePeerSrv: reg.Histogram(stageHistName, help, "stage", "peer.serve"),
		start:        time.Now(),
	}
	if !s.opts.Obs.DisableTracing {
		s.obs.tracer = obs.NewTracer(obs.NewRecorder(s.opts.Obs.FlightRecorderSize))
	}
	reg.RegisterCollector(s.collectMetrics)
}

// tracer returns the server's tracer (nil = tracing off; obs treats a
// nil tracer as a full no-op).
func (s *Server) tracer() *obs.Tracer { return s.obs.tracer }

// FlightRecorder exposes the flight recorder (nil when tracing is
// disabled); tests and kyrix-bench dumps read it.
func (s *Server) FlightRecorder() *obs.Recorder { return s.obs.tracer.Recorder() }

// MetricsRegistry exposes the metrics registry.
func (s *Server) MetricsRegistry() *obs.Registry { return s.obs.reg }

// buildVersion resolves the module version baked into the binary;
// "devel" outside a released build.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// collectMetrics is the scrape-time collector: every counter /stats
// serves, re-rendered as Prometheus families. Reading the same atomics
// Snapshot reads keeps the two surfaces consistent by construction.
func (s *Server) collectMetrics(c *obs.CollectorScratchpad) {
	const (
		reqHelp   = "Requests served, by kind."
		cacheHelp = "Cache tier events."
	)
	c.Counter("kyrix_requests_total", reqHelp, float64(s.Stats.TileRequests.Load()), "kind", "tile")
	c.Counter("kyrix_requests_total", reqHelp, float64(s.Stats.BoxRequests.Load()), "kind", "dbox")
	c.Counter("kyrix_requests_total", reqHelp, float64(s.Stats.BatchRequests.Load()), "kind", "batch")
	c.Counter("kyrix_requests_total", reqHelp, float64(s.Stats.Updates.Load()), "kind", "update")

	bc := s.bcache.Stats()
	c.Counter("kyrix_cache_events_total", cacheHelp, float64(bc.Hits), "tier", "l1", "event", "hit")
	c.Counter("kyrix_cache_events_total", cacheHelp, float64(bc.Misses), "tier", "l1", "event", "miss")
	c.Counter("kyrix_cache_events_total", cacheHelp, float64(bc.Admitted), "tier", "l1", "event", "admitted")
	c.Counter("kyrix_cache_events_total", cacheHelp, float64(bc.Rejected), "tier", "l1", "event", "rejected")
	c.Gauge("kyrix_cache_bytes", "Resident cache bytes by tier.", float64(bc.Bytes), "tier", "l1")
	c.Counter("kyrix_coalesced_hits_total", "Requests that piggybacked on an in-flight identical query.", float64(s.Stats.CoalescedHits.Load()))
	c.Counter("kyrix_served_cache_hits_total", "Requests answered from the backend cache.", float64(s.Stats.CacheHits.Load()))

	c.Counter("kyrix_db_queries_total", "Database queries executed.", float64(s.Stats.DBQueries.Load()))
	c.Counter("kyrix_rows_served_total", "Rows returned by serving queries.", float64(s.Stats.RowsServed.Load()))
	c.Counter("kyrix_bytes_total", "Payload bytes, raw vs as written on framed streams.", float64(s.Stats.BytesServed.Load()), "kind", "payload")
	c.Counter("kyrix_bytes_total", "Payload bytes, raw vs as written on framed streams.", float64(s.Stats.WireBytes.Load()), "kind", "wire")
	c.Counter("kyrix_frames_total", "v3 frame encodings applied.", float64(s.Stats.DeltaFrames.Load()), "encoding", "delta")
	c.Counter("kyrix_frames_total", "v3 frame encodings applied.", float64(s.Stats.CompressedFrames.Load()), "encoding", "flate")
	c.Counter("kyrix_lod_queries_total", "Window queries routed to an aggregation-pyramid level.", float64(s.Stats.LODQueries.Load()))

	if s.l2 != nil {
		l2 := s.l2.Snapshot()
		c.Counter("kyrix_cache_events_total", cacheHelp, float64(l2.Hits), "tier", "l2", "event", "hit")
		c.Counter("kyrix_cache_events_total", cacheHelp, float64(l2.Misses), "tier", "l2", "event", "miss")
		c.Gauge("kyrix_cache_bytes", "Resident cache bytes by tier.", float64(l2.Bytes), "tier", "l2")
		c.Counter("kyrix_l2_flushes_total", "L2 write-behind batch flushes.", float64(l2.BatchFlushes))
		c.Counter("kyrix_l2_scrubs_total", "L2 background scrub passes.", float64(l2.Scrubs))
		c.Counter("kyrix_l2_scrubbed_bad_total", "L2 records dropped by scrubbing.", float64(l2.ScrubbedBad))
		c.Counter("kyrix_l2_corrupt_reads_total", "L2 reads failing checksum verification.", float64(l2.CorruptReads))
	}
	if s.cluster != nil {
		cs := &s.cluster.Stats
		c.Counter("kyrix_peer_fills_total", "Cache fills served by a peer.", float64(cs.PeerFills.Load()))
		c.Counter("kyrix_peer_errors_total", "Failed peer exchanges.", float64(cs.PeerErrors.Load()))
		c.Counter("kyrix_peer_serves_total", "Fill requests served for peers.", float64(cs.PeerServes.Load()))
		c.Counter("kyrix_peer_local_fallbacks_total", "Peer failures degraded to local queries.", float64(cs.LocalFallbacks.Load()))
		c.Gauge("kyrix_cluster_epoch", "This node's cluster epoch.", float64(s.cluster.Epoch()))
	}
	if s.replog != nil {
		rs := s.replog.Snapshot()
		c.Gauge("kyrix_replog_commit_index", "Replicated log commit index.", float64(rs.Commit))
		c.Gauge("kyrix_replog_applied_index", "Replicated log applied index.", float64(rs.Applied))
		c.Gauge("kyrix_replog_commit_lag", "Committed-but-unapplied log entries.", float64(rs.Commit-rs.Applied))
	}

	c.Gauge("kyrix_uptime_seconds", "Seconds since the server started.", time.Since(s.obs.start).Seconds())
	c.Gauge("kyrix_build_info", "Build metadata; value is always 1.", 1,
		"version", buildVersion(), "goversion", runtime.Version())
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WriteProm(w)
}

// handleDebugRequests serves the flight recorder: the N most recent and
// N slowest completed traces as JSON.
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.obs.tracer.Recorder().Snapshot())
}

// mountDebug adds the observability endpoints to the server mux.
func (s *Server) mountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	if s.opts.Obs.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// startRequestSpan opens the root span of one HTTP request, continuing
// the caller's trace when the request carries a trace header (the
// frontend stamps its interaction trace onto /batch POSTs; a peer
// stamps its fill trace onto /peer).
func (s *Server) startRequestSpan(r *http.Request, name string) (context.Context, *obs.Span) {
	if tc, ok := obs.ExtractHeader(r.Header); ok {
		return s.tracer().StartRemote(r.Context(), name, tc)
	}
	return s.tracer().Start(r.Context(), name)
}

// traceMiddleware wraps a handler (the replog RPC surface) so an
// incoming trace header opens a span for the RPC: a follower's vote or
// append shows up in the leader's timeline budget, and the follower's
// own flight recorder keeps the RPC under the leader's trace ID.
func (s *Server) traceMiddleware(name string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc, ok := obs.ExtractHeader(r.Header)
		if !ok {
			h.ServeHTTP(w, r)
			return
		}
		ctx, sp := s.tracer().StartRemote(r.Context(), name, tc)
		sp.Attr("path", r.URL.Path)
		defer sp.End()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}
