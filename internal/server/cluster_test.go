package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/geom"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

// clusterNode is one in-process cluster member: a full Server on a
// real loopback listener. stop force-closes the node mid-test (the
// dead-peer scenarios).
type clusterNode struct {
	srv  *Server
	url  string
	stop func()
}

// newTestCluster builds n servers over identical datasets (same seed,
// separate embedded DBs — the stand-in for a shared backing store),
// all joined to one ring. Listeners come first so every node knows the
// full peer list at construction.
func newTestCluster(t testing.TB, n, points int, mutate func(i int, o *Options)) []*clusterNode {
	t.Helper()
	const canvasW, canvasH = 4096.0, 2048.0
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	d := workload.Uniform(points, canvasW, canvasH, 11)
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		db := sqldb.NewDB()
		if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
			t.Fatal(err)
		}
		for _, p := range d.Points {
			if err := db.InsertRow("points", storage.Row{
				storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
			}); err != nil {
				t.Fatal(err)
			}
		}
		reg := spec.NewRegistry()
		reg.RegisterRenderer("dots")
		app := &spec.App{
			Name: "pts",
			Canvases: []spec.Canvas{{
				ID: "main", W: canvasW, H: canvasH,
				Transforms: []spec.Transform{{
					ID: "t", Query: "SELECT * FROM points",
					Columns: []spec.ColumnSpec{
						{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
						{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
					},
				}},
				Layers: []spec.Layer{{
					TransformID: "t",
					Placement:   &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
					Renderer:    "dots",
				}},
			}},
			InitialCanvas: "main", InitialX: canvasW / 2, InitialY: canvasH / 2,
			ViewportW: 512, ViewportH: 512,
		}
		ca, err := spec.Compile(app, reg)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			CacheBytes:     8 << 20,
			CacheAdmission: "lfu",
			Cluster: ClusterOptions{
				Self:        urls[i],
				Peers:       urls,
				PeerTimeout: 5 * time.Second,
			},
			Precompute: fetch.Options{
				BuildSpatial: true,
				TileSizes:    []float64{512},
				MappingIndex: sqldb.IndexBTree,
			},
		}
		if mutate != nil {
			mutate(i, &opts)
		}
		srv, err := New(db, ca, opts)
		if err != nil {
			t.Fatal(err)
		}
		hsrv := &http.Server{Handler: srv.Handler()}
		ln := lns[i]
		go func() { _ = hsrv.Serve(ln) }()
		stop := func() { _ = hsrv.Close(); _ = ln.Close() }
		t.Cleanup(stop)
		nodes[i] = &clusterNode{srv: srv, url: urls[i], stop: stop}
	}
	return nodes
}

// tileKeyFor reproduces serveTile's canonical cache key.
func tileKeyFor(codec Codec, design string, size float64, tid geom.TileID) string {
	return fmt.Sprintf("%s/%s/%s", codec, design, fetch.TileKeyOf("main/0", size, tid))
}

// ownerAndOther finds a tile whose key node 0 does NOT own, returning
// (owner, nonOwner, tileID) — guaranteed to exist with two nodes and a
// handful of candidate tiles.
func ownerAndOther(t *testing.T, nodes []*clusterNode) (*clusterNode, *clusterNode, geom.TileID) {
	t.Helper()
	for col := 0; col < 8; col++ {
		for row := 0; row < 4; row++ {
			tid := geom.TileID{Col: col, Row: row}
			key := tileKeyFor(CodecJSON, "spatial", 512, tid)
			ownerURL := nodes[0].srv.cluster.Owner(key)
			var owner, other *clusterNode
			for _, n := range nodes {
				if n.url == ownerURL {
					owner = n
				} else {
					other = n
				}
			}
			if owner != nil && other != nil {
				return owner, other, tid
			}
		}
	}
	t.Fatal("no tile found with distinct owner/non-owner")
	return nil, nil, geom.TileID{}
}

// getTileErr fetches one tile; goroutine-safe (no t.Fatal off the test
// goroutine).
func getTileErr(baseURL string, tid geom.TileID) ([]byte, error) {
	resp, err := http.Get(fmt.Sprintf("%s/tile?canvas=main&layer=0&size=512&col=%d&row=%d", baseURL, tid.Col, tid.Row))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tile: %s: %s", resp.Status, body)
	}
	return body, nil
}

func getTile(t testing.TB, baseURL string, tid geom.TileID) []byte {
	t.Helper()
	body, err := getTileErr(baseURL, tid)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postUpdate(t *testing.T, baseURL, sql string) {
	body, _ := json.Marshal(UpdateRequest{SQL: sql})
	resp, err := http.Post(baseURL+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("update: %s: %s", resp.Status, b)
	}
}

// TestClusterCrossNodeSingleflight is the acceptance property: one hot
// key hammered through BOTH nodes concurrently executes exactly one
// database query cluster-wide per generation. The non-owner's misses
// coalesce onto one peer fetch; the owner's flight dedupes that fetch
// with its own local misses; the query hook holds the single execution
// open until all callers are in flight. Run with -race this doubles as
// the cluster stress test.
func TestClusterCrossNodeSingleflight(t *testing.T) {
	nodes := newTestCluster(t, 2, 500, func(i int, o *Options) {
		// Replication would serve later generations from the
		// non-owner's cache; keep every request flowing to the owner
		// so the per-generation count is exact.
		o.Cluster.HotReplicate = -1
	})
	owner, other, tid := ownerAndOther(t, nodes)
	key := tileKeyFor(CodecJSON, "spatial", 512, tid)

	for gen := 0; gen < 2; gen++ {
		release := make(chan struct{})
		owner.srv.queryHook = func() { <-release }
		ownerBefore := owner.srv.Stats.DBQueries.Load()
		otherBefore := other.srv.Stats.DBQueries.Load()

		const n = 8
		var wg sync.WaitGroup
		bodies := make([][]byte, 2*n)
		errs := make([]error, 2*n)
		for i := 0; i < n; i++ {
			for j, node := range []*clusterNode{owner, other} {
				wg.Add(1)
				go func(slot int, url string) {
					defer wg.Done()
					bodies[slot], errs[slot] = getTileErr(url, tid)
				}(2*i+j, node.url)
			}
		}
		// The owner's flight key sees both its local callers and the
		// non-owner's forwarded fill; wait until the execution is held
		// open with at least one caller, then let the herd pile up
		// briefly and release.
		fkey := flightKey(owner.srv.cacheGen.Load(), key)
		deadline := time.Now().Add(10 * time.Second)
		for owner.srv.flight.Pending(fkey) < 1 {
			if time.Now().After(deadline) {
				t.Fatalf("gen %d: no flight formed for %q", gen, fkey)
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond)
		close(release)
		wg.Wait()
		owner.srv.queryHook = nil

		for i, err := range errs {
			if err != nil {
				t.Fatalf("gen %d: caller %d: %v", gen, i, err)
			}
		}
		for i := 1; i < len(bodies); i++ {
			if !bytes.Equal(bodies[i], bodies[0]) {
				t.Fatalf("gen %d: caller %d saw a different payload", gen, i)
			}
		}
		if got := owner.srv.Stats.DBQueries.Load() - ownerBefore; got != 1 {
			t.Fatalf("gen %d: owner ran %d queries, want exactly 1", gen, got)
		}
		if got := other.srv.Stats.DBQueries.Load() - otherBefore; got != 0 {
			t.Fatalf("gen %d: non-owner ran %d queries, want 0", gen, got)
		}
		if fills := other.srv.cluster.Stats.PeerFills.Load(); fills == 0 {
			t.Fatalf("gen %d: non-owner recorded no peer fills", gen)
		}
		// Next generation: an update through the owner clears its
		// cache and bumps the epoch; the non-owner adopts mid-round on
		// its first peer exchange. The same key must again cost
		// exactly one database query cluster-wide.
		postUpdate(t, owner.url, "UPDATE points SET val = 1 WHERE id = 1")
	}
}

// TestClusterEpochInvalidation: an update at one node invalidates the
// other's cache on the very next peer exchange — the gossiped-epoch
// contract (stale nodes clear + refetch, bounded staleness of one
// exchange).
func TestClusterEpochInvalidation(t *testing.T) {
	nodes := newTestCluster(t, 2, 500, nil)
	owner, other, tid := ownerAndOther(t, nodes)
	key := tileKeyFor(CodecJSON, "spatial", 512, tid)

	// Warm the owner's cache: the exchanged tile plus a second witness
	// key that nothing will re-request — the proof the adoption
	// actually cleared the cache (the exchanged tile itself is
	// re-cached fresh by the very fill that gossips the epoch).
	getTile(t, owner.url, tid)
	var witnessKey string
	for col := 0; col < 16 && witnessKey == ""; col++ {
		for row := 0; row < 8 && witnessKey == ""; row++ {
			cand := geom.TileID{Col: col, Row: row}
			k := tileKeyFor(CodecJSON, "spatial", 512, cand)
			if cand != tid && owner.srv.cluster.Owns(k) {
				getTile(t, owner.url, cand)
				witnessKey = k
			}
		}
	}
	if witnessKey == "" {
		t.Fatal("no second owner-owned tile available as a witness")
	}
	if !owner.srv.bcache.Contains(key) || !owner.srv.bcache.Contains(witnessKey) {
		t.Fatal("owner did not cache its own keys")
	}

	// Update through the NON-owner: its epoch bumps locally; the owner
	// is now stale and must learn via gossip.
	postUpdate(t, other.url, "UPDATE points SET val = 2 WHERE id = 1")
	if e := other.srv.cluster.Epoch(); e != 1 {
		t.Fatalf("updating node epoch = %d, want 1", e)
	}
	if e := owner.srv.cluster.Epoch(); e != 0 {
		t.Fatalf("owner epoch = %d before any exchange, want 0", e)
	}

	// The non-owner's next miss forwards to the owner carrying epoch 1
	// in the fill request; the owner must adopt it and clear.
	getTile(t, other.url, tid)
	deadline := time.Now().Add(5 * time.Second)
	for owner.srv.cluster.Epoch() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("owner never adopted epoch 1 (at %d)", owner.srv.cluster.Epoch())
		}
		time.Sleep(time.Millisecond)
	}
	if owner.srv.bcache.Contains(witnessKey) {
		t.Fatal("owner kept a stale cached payload across the epoch adoption")
	}
	if owner.srv.cluster.Stats.EpochAdoptions.Load() != 1 {
		t.Fatalf("owner adoptions = %d, want 1", owner.srv.cluster.Stats.EpochAdoptions.Load())
	}
	// And the owner's generation moved, so in-flight pre-update
	// queries cannot repopulate the cache.
	if gen := owner.srv.cacheGen.Load(); gen == 0 {
		t.Fatal("epoch adoption did not bump the cache generation")
	}
}

// TestClusterUpdateIdempotencyKey: on the replicated path, re-POSTing
// an /update carrying the same client id applies the statement once —
// the retry-after-ambiguous-503 contract for non-idempotent SQL.
func TestClusterUpdateIdempotencyKey(t *testing.T) {
	root := t.TempDir()
	nodes := newTestCluster(t, 2, 50, func(i int, o *Options) {
		o.Cluster.Replog = ReplogOptions{
			Dir:             filepath.Join(root, fmt.Sprintf("n%d", i)),
			ElectionTimeout: 50 * time.Millisecond,
		}
	})
	postKeyed := func(id, sql string) {
		t.Helper()
		body, _ := json.Marshal(UpdateRequest{ID: id, SQL: sql})
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Post(nodes[0].url+"/update", "application/json", bytes.NewReader(body))
			if err == nil {
				rb, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
				err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, rb)
			}
			// 503 until the log elects a leader; retry.
			if time.Now().After(deadline) {
				t.Fatalf("update never acked: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	valAt := func(n *clusterNode, id int) float64 {
		t.Helper()
		res, err := n.srv.db.Query(fmt.Sprintf("SELECT val FROM points WHERE id = %d", id))
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("query val: %v (%d rows)", err, len(res.Rows))
		}
		return res.Rows[0][0].F
	}
	v0 := valAt(nodes[0], 1)

	// The same non-idempotent statement twice under one key, then a
	// sentinel under its own key. Log order means the sentinel's
	// visibility proves the earlier commands have fully applied.
	postKeyed("req-1", "UPDATE points SET val = val + 1 WHERE id = 1")
	postKeyed("req-1", "UPDATE points SET val = val + 1 WHERE id = 1")
	postKeyed("req-2", "UPDATE points SET val = val + 1 WHERE id = 2")

	s0 := valAt(nodes[0], 2)
	deadline := time.Now().Add(10 * time.Second)
	for valAt(nodes[1], 2) != s0 {
		if time.Now().After(deadline) {
			t.Fatal("sentinel update never reached node 1")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, n := range nodes {
		if got := valAt(n, 1); got != v0+1 {
			t.Fatalf("node %d: val = %v, want %v (keyed retry must apply once)", i, got, v0+1)
		}
	}
}

// TestClusterHotKeyReplication: a non-owned key crossing the sketch-
// frequency threshold is admitted into the non-owner's local cache, so
// later requests are local hits and stop paying the peer hop.
func TestClusterHotKeyReplication(t *testing.T) {
	nodes := newTestCluster(t, 2, 500, func(i int, o *Options) {
		o.Cluster.HotReplicate = 3
	})
	owner, other, tid := ownerAndOther(t, nodes)
	key := tileKeyFor(CodecJSON, "spatial", 512, tid)

	// Each miss records one sketch sighting; the fill whose recorded
	// frequency reaches the threshold replicates.
	var fillsAtReplication int64
	for i := 0; i < 6 && !other.srv.bcache.Contains(key); i++ {
		getTile(t, other.url, tid)
		fillsAtReplication = other.srv.cluster.Stats.PeerFills.Load()
	}
	if !other.srv.bcache.Contains(key) {
		t.Fatal("hot key never replicated into the non-owner's cache")
	}
	if other.srv.cluster.Stats.HotReplicas.Load() == 0 {
		t.Fatal("HotReplicas counter did not move")
	}
	// From here on the non-owner serves locally: no new peer fills.
	hitsBefore := other.srv.Stats.CacheHits.Load()
	getTile(t, other.url, tid)
	if got := other.srv.cluster.Stats.PeerFills.Load(); got != fillsAtReplication {
		t.Fatalf("replicated key still paid a peer fill (%d -> %d)", fillsAtReplication, got)
	}
	if other.srv.Stats.CacheHits.Load() == hitsBefore {
		t.Fatal("replicated key did not serve as a local cache hit")
	}
	_ = owner
}

// TestClusterLocalFallback: a dead owner degrades the non-owner to a
// local database query — same payload, no error, fallback counted.
func TestClusterLocalFallback(t *testing.T) {
	nodes := newTestCluster(t, 2, 500, func(i int, o *Options) {
		o.Cluster.PeerTimeout = 300 * time.Millisecond
	})
	owner, other, tid := ownerAndOther(t, nodes)

	// Sanity: the peer path works while the owner is alive.
	if got := getTile(t, other.url, tid); len(got) == 0 {
		t.Fatal("peer-filled payload empty")
	}

	// Kill the owner, then ask the non-owner for a fresh (uncached,
	// non-replicated) key the dead node owns.
	ownerURL := owner.url
	owner.stop()

	var fresh geom.TileID
	found := false
	for col := 0; col < 16 && !found; col++ {
		for row := 0; row < 8 && !found; row++ {
			tid2 := geom.TileID{Col: col, Row: row}
			k := tileKeyFor(CodecJSON, "spatial", 512, tid2)
			if other.srv.cluster.Owner(k) == ownerURL && !other.srv.bcache.Contains(k) {
				fresh, found = tid2, true
			}
		}
	}
	if !found {
		t.Fatal("no fresh owner-owned tile available")
	}
	got := getTile(t, other.url, fresh)
	if len(got) == 0 {
		t.Fatal("fallback returned an empty payload")
	}
	if other.srv.cluster.Stats.LocalFallbacks.Load() == 0 {
		t.Fatal("LocalFallbacks did not count the degraded fill")
	}
	if other.srv.Stats.DBQueries.Load() == 0 {
		t.Fatal("fallback did not run a local query")
	}
}
