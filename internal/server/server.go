package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kyrix/internal/cache"
	"kyrix/internal/cluster"
	"kyrix/internal/fetch"
	"kyrix/internal/geom"
	"kyrix/internal/obs"
	"kyrix/internal/replog"
	"kyrix/internal/singleflight"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/store"
	"kyrix/internal/wire"
)

// ClusterOptions configures this node's membership in a serving
// cluster (consistent-hash tile ownership with peer cache fill). The
// alias keeps the knobs constructible by external module consumers.
type ClusterOptions = cluster.Options

// ReplogOptions configures the replicated update log (Cluster.Replog);
// setting its Dir turns /update into a quorum-committed log command.
type ReplogOptions = cluster.ReplogOptions

// L1CacheOptions configures the in-memory backend cache (the first
// tier every request consults).
type L1CacheOptions struct {
	// Bytes is the cache byte budget (0 disables the cache — note the
	// deprecated-alias fallback: a zero here falls back to the flat
	// Options.CacheBytes, so "disabled" means both are zero).
	Bytes int64
	// Shards is the shard count (rounded up to a power of two; 0 picks
	// an automatic count from GOMAXPROCS).
	Shards int
	// Admission selects the admission policy: "lfu" enables W-TinyLFU
	// frequency-based admission (a count-min sketch estimates key
	// popularity; once the cache is at budget a new entry must be more
	// frequent than the would-be victim to displace it, so one-shot
	// scans cannot flush the hot tile set); "off" or "" keeps the plain
	// sharded LRU. DefaultOptions enables "lfu".
	Admission string
	// SketchCounters sizes the TinyLFU frequency sketch (total 4-bit
	// counters across shards; 0 derives a size from Bytes). Ignored
	// unless Admission is "lfu".
	SketchCounters int
	// Doorkeeper puts a bloom-filter doorkeeper in front of the
	// TinyLFU sketch: a key's first sighting per decay period sets
	// bloom bits instead of count-min counters, so one-hit wonders (a
	// sequential scan) cannot inflate the sketch and, through
	// collisions, make unrelated cold keys look admissible. The filter
	// resets on sketch decay. Ignored unless Admission is "lfu".
	Doorkeeper bool
}

// L2CacheOptions configures the persistent tile store (internal/store)
// that sits under the in-memory cache: an embedded log-structured KV
// tier holding encoded post-render payloads across restarts. The zero
// value (no Path) disables the tier.
type L2CacheOptions struct {
	// Path is the segment directory; empty disables the L2 tier.
	Path string
	// MaxBytes is the on-disk budget (0 = 1 GiB); oldest segments are
	// evicted with live-record salvage when it is exceeded.
	MaxBytes int64
	// SegmentBytes bounds one segment file (0 picks a default from
	// MaxBytes).
	SegmentBytes int64
	// WriteQueueDepth bounds the write-behind fill queue; fills finding
	// it full are dropped, never blocked on (0 = 1024).
	WriteQueueDepth int
	// FlushInterval is the longest an enqueued fill waits before its
	// batch is appended and fsynced (0 = 50 ms).
	FlushInterval time.Duration
	// ScrubInterval, when positive, re-verifies every resident record's
	// checksum each interval in the background, dropping any that no
	// longer read back clean (surfaced as scrubbedBad in /stats). 0
	// disables scrubbing.
	ScrubInterval time.Duration
}

// CacheOptions is the nested cache configuration: L1 is the in-memory
// W-TinyLFU/LRU tier, L2 the persistent tile store. This is the
// canonical way to configure caching; the flat Cache* fields on
// Options remain as deprecated aliases (an explicitly set nested field
// wins over its alias).
type CacheOptions struct {
	L1 L1CacheOptions
	L2 L2CacheOptions
}

// Options configures a backend server.
type Options struct {
	// Cache is the nested cache configuration (L1 in-memory tier, L2
	// persistent tile store). Field-by-field precedence: a non-zero
	// nested field wins over its deprecated flat alias below; a zero
	// nested field falls back to the alias.
	Cache CacheOptions

	// CacheBytes is the backend cache budget.
	//
	// Deprecated: set Cache.L1.Bytes instead.
	CacheBytes int64
	// CacheShards is the backend cache shard count.
	//
	// Deprecated: set Cache.L1.Shards instead.
	CacheShards int
	// CacheAdmission selects the backend cache admission policy.
	//
	// Deprecated: set Cache.L1.Admission instead.
	CacheAdmission string
	// CacheSketchCounters sizes the TinyLFU frequency sketch.
	//
	// Deprecated: set Cache.L1.SketchCounters instead.
	CacheSketchCounters int
	// CacheDoorkeeper enables the TinyLFU bloom doorkeeper.
	//
	// Deprecated: set Cache.L1.Doorkeeper instead.
	CacheDoorkeeper bool
	// Cluster joins this node to a serving cluster: cache keys are
	// partitioned over a consistent-hash ring, a non-owner forwards
	// misses to the owner instead of querying the database, hot keys
	// are replicated locally, and /update bumps a cluster epoch
	// gossiped on every peer exchange. The zero value serves
	// standalone.
	Cluster ClusterOptions
	// DisableCoalescing turns off singleflight request coalescing.
	// With coalescing on (the default), N concurrent requests for the
	// same tile/box key run one database query and share the payload.
	DisableCoalescing bool
	// PrecomputeParallelism bounds how many layers are materialized
	// concurrently at startup (0 = GOMAXPROCS).
	PrecomputeParallelism int
	// BatchConcurrency bounds how many tiles of one /batch request are
	// served concurrently (0 = an automatic bound).
	BatchConcurrency int
	// PlanCacheSize bounds the prepared-plan cache (parsed SELECT
	// statements, LRU-evicted). 0 picks the default of 512 plans —
	// far above the constant per-layer statement shapes, but a hard
	// ceiling if ad-hoc SQL ever flows through RunSelect.
	PlanCacheSize int
	// Obs configures observability: request tracing and the flight
	// recorder (on by default), the /metrics exposition, and opt-in
	// pprof. See ObsOptions.
	Obs ObsOptions
	// Precompute controls which physical structures are built at
	// startup for every layer.
	Precompute fetch.Options
}

// DefaultOptions builds both database designs with the paper's three
// tile sizes and a 256 MB backend cache. The cache knobs live in the
// nested Cache struct; callers starting from DefaultOptions should
// adjust Cache.L1/Cache.L2 fields (overriding the deprecated flat
// aliases instead would lose to the nested defaults).
func DefaultOptions() Options {
	return Options{
		Cache: CacheOptions{
			L1: L1CacheOptions{
				Bytes:     256 << 20,
				Admission: "lfu",
			},
		},
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    []float64{256, 1024, 4096},
			MappingIndex: sqldb.IndexBTree,
		},
	}
}

// resolvedCache merges the nested Cache struct with the deprecated
// flat aliases, field by field: a non-zero nested field wins, a zero
// one falls back to its alias. Bool fields OR (true from either side
// enables).
func (o Options) resolvedCache() CacheOptions {
	c := o.Cache
	if c.L1.Bytes == 0 {
		c.L1.Bytes = o.CacheBytes
	}
	if c.L1.Shards == 0 {
		c.L1.Shards = o.CacheShards
	}
	if c.L1.Admission == "" {
		c.L1.Admission = o.CacheAdmission
	}
	if c.L1.SketchCounters == 0 {
		c.L1.SketchCounters = o.CacheSketchCounters
	}
	if !c.L1.Doorkeeper {
		c.L1.Doorkeeper = o.CacheDoorkeeper
	}
	return c
}

// Stats counts server activity.
type Stats struct {
	TileRequests  atomic.Int64
	BoxRequests   atomic.Int64
	BatchRequests atomic.Int64
	CacheHits     atomic.Int64
	// CoalescedHits counts requests that piggybacked on another
	// in-flight identical request instead of querying the database.
	CoalescedHits atomic.Int64
	DBQueries     atomic.Int64
	RowsServed    atomic.Int64
	BytesServed   atomic.Int64
	Updates       atomic.Int64
	QueryNanos    atomic.Int64
	// WireBytes counts frame payload bytes as actually written on
	// framed /batch streams (post-compression/delta); BytesServed keeps
	// counting the raw-payload equivalent, so WireBytes/BytesServed is
	// the served compression ratio.
	WireBytes atomic.Int64
	// DeltaFrames counts v3 dbox frames that shipped as deltas;
	// CompressedFrames counts frames that shipped DEFLATE-compressed.
	DeltaFrames      atomic.Int64
	CompressedFrames atomic.Int64
	// LODQueries counts window queries routed to an aggregation-pyramid
	// level instead of raw rows.
	LODQueries atomic.Int64
}

// Server is the Kyrix backend: precomputed physical layers over an
// embedded DBMS, a sharded backend cache, singleflight request
// coalescing, and the HTTP surface the frontend talks to.
type Server struct {
	db     *sqldb.DB
	ca     *spec.CompiledApp
	layers map[string]*fetch.PhysicalLayer
	bcache *cache.LRU
	opts   Options

	// flight coalesces concurrent identical tile/box requests onto one
	// database query.
	flight singleflight.Group
	// cacheGen is the backend-cache generation, bumped by every
	// /update before the cache is cleared. Query results started under
	// an older generation are never stored (and flight keys embed the
	// generation, so post-update requests never join a stale flight) —
	// an in-flight coalesced query from before the update cannot
	// repopulate the cache with pre-update rows.
	cacheGen atomic.Int64
	// epochMu orders v3 delta planning against updates: a delta frame
	// diffs TWO payloads (the cached base and the fresh full result),
	// and mixing epochs — a pre-update base with a post-update result —
	// would ship rows the tombstone/entering diff cannot see changed.
	// Delta-eligible items hold the read side across query + plan;
	// handleUpdate holds the write side across exec + generation bump +
	// cache clear, so a plan is wholly before or wholly after an update
	// (and "after" finds the base evicted, degrading to a full frame).
	// Non-delta serving never touches this lock.
	epochMu sync.RWMutex
	// plans caches parsed SELECT statements by SQL text, bounded by
	// Options.PlanCacheSize with LRU eviction. Every layer emits a
	// constant statement shape per design (arguments ride in '?'
	// placeholders), so the hot path skips the parser entirely.
	plans *cache.LRU
	// deltaMemo caches decoded dbox payloads for the v3 delta planner,
	// keyed by the payload's content hash (wire.PayloadID) — during a
	// pan chain each payload is decoded once, when it is the "new" box,
	// and found here when the next request declares it as the base.
	// Content-addressed entries are immutable, so updates need no
	// invalidation; the LRU bound caps residency.
	deltaMemo *cache.LRU

	// cluster is this node's membership in the serving cluster (ring,
	// peer transport, epoch); nil when serving standalone.
	cluster *cluster.Node

	// replog, when non-nil, is the replicated update log: /update
	// becomes a quorum-committed log command applied on every node in
	// log order through applyUpdate, replacing the best-effort epoch
	// gossip with a committed-prefix guarantee. Configured by
	// Options.Cluster.Replog.Dir.
	replog *replog.Node
	// applyMu guards applyAffected, the bounded index→rows-affected
	// side channel from applyUpdate back to the /update handler that
	// submitted the command (the apply callback runs on the log's
	// applier goroutine, not the handler's).
	applyMu       sync.Mutex
	applyAffected map[uint64]int64 // guarded by applyMu

	// l2 is the persistent tile store under the in-memory cache (nil
	// when Options.Cache.L2.Path is empty): an L1 miss reads L2 before
	// the database, database and peer fills are written back through
	// the store's bounded write-behind queue, and every generation/
	// epoch bump invalidates it by prefix (store.Bump).
	l2 *store.Store

	// queryHook, when set (tests only), runs inside every database
	// query execution; the coalescing test uses it to hold a query
	// open until all concurrent callers have piled onto the flight.
	queryHook func()

	// obs is the observability layer (obs.go): tracer + flight
	// recorder, metrics registry, and pre-resolved stage histograms.
	obs serverObs

	Stats Stats
}

func layerKey(canvasID string, idx int) string {
	return fmt.Sprintf("%s/%d", canvasID, idx)
}

// New precomputes every layer of the compiled app and returns a ready
// server ("the backend server then builds indexes and performs
// necessary precomputation"). Layers are materialized in parallel
// under a bounded worker pool; the first error wins and the remaining
// work is abandoned.
func New(db *sqldb.DB, ca *spec.CompiledApp, opts Options) (*Server, error) {
	planCap := opts.PlanCacheSize
	if planCap <= 0 {
		planCap = 512
	}
	cacheOpts := opts.resolvedCache()
	var admission cache.Admission
	switch cacheOpts.L1.Admission {
	case "", "off":
		admission = cache.AdmissionOff
	case "lfu":
		admission = cache.AdmissionLFU
	default:
		return nil, fmt.Errorf("server: unknown cache admission %q (want \"lfu\" or \"off\")", cacheOpts.L1.Admission)
	}
	s := &Server{
		db:     db,
		ca:     ca,
		layers: make(map[string]*fetch.PhysicalLayer),
		bcache: cache.New(cache.Config{
			Budget:         cacheOpts.L1.Bytes,
			Shards:         cacheOpts.L1.Shards,
			Admission:      admission,
			SketchCounters: cacheOpts.L1.SketchCounters,
			Doorkeeper:     cacheOpts.L1.Doorkeeper,
		}),
		// One entry = size 1, so the byte budget counts plans; a single
		// shard keeps exact LRU order (the cap is tiny).
		plans: cache.NewLRUSharded(int64(planCap), 1),
		// Entries are charged their encoded-payload size (the decoded
		// rows scale with it), so resident memory stays bounded like
		// the other caches; 32 MB covers every live pan chain.
		deltaMemo: cache.NewLRUSharded(32<<20, 1),
		opts:      opts,
	}
	s.initObs()
	if cacheOpts.L2.Path != "" {
		l2, err := store.Open(store.Options{
			Path:            cacheOpts.L2.Path,
			MaxBytes:        cacheOpts.L2.MaxBytes,
			SegmentBytes:    cacheOpts.L2.SegmentBytes,
			WriteQueueDepth: cacheOpts.L2.WriteQueueDepth,
			FlushInterval:   cacheOpts.L2.FlushInterval,
			ScrubInterval:   cacheOpts.L2.ScrubInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("server: open L2 tile store: %w", err)
		}
		s.l2 = l2
	}
	if opts.Cluster.Enabled() {
		cn, err := cluster.New(opts.Cluster)
		if err != nil {
			return nil, err
		}
		// Adopting a newer cluster epoch is the remote form of
		// execUpdate's cache transition: generation bump first (so
		// in-flight queries refuse to store), then the clear, the
		// whole step under the epoch write lock so it cannot
		// interleave with a v3 delta plan. The hook never runs while
		// this node holds epochMu itself: epochs are only observed on
		// peer exchanges, and delta-eligible items hold the read lock
		// only when their key is locally owned (no peer hop).
		cn.SetEpochHook(func(cluster.EpochVector) {
			s.epochMu.Lock()
			s.cacheGen.Add(1)
			s.bcache.Clear()
			if s.l2 != nil {
				// Remote updates invalidate the persistent tier the
				// same way local ones do: a generation bump makes every
				// resident record invisible without touching disk. A
				// bump failure (store closing mid-shutdown) only means
				// the tier keeps serving until Close finishes.
				_, _ = s.l2.Bump()
			}
			s.epochMu.Unlock()
		})
		s.cluster = cn
	}

	// Per-layer materialization tasks on the shared work-stealing pool.
	// The pool cancels the context on the first error, so sibling layer
	// builds in flight stop at their next batch boundary instead of
	// running a doomed startup to completion — previously a failure only
	// kept *unstarted* layers from running.
	workers := opts.PrecomputeParallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		layerMu sync.Mutex
		tasks   []fetch.Task
	)
	for ci, c := range ca.Spec.Canvases {
		for li := range c.Layers {
			ci, li, id := ci, li, c.ID
			tasks = append(tasks, func(ctx context.Context) error {
				pl, err := fetch.Materialize(ctx, db, ca, ci, li, opts.Precompute)
				if err != nil {
					return fmt.Errorf("server: precompute %s layer %d: %w", id, li, err)
				}
				layerMu.Lock()
				s.layers[layerKey(id, li)] = pl
				layerMu.Unlock()
				return nil
			})
		}
	}
	if err := fetch.RunTasks(context.Background(), workers, tasks); err != nil {
		return nil, err
	}
	if opts.Cluster.Replog.Dir != "" {
		// Opened after precompute so WAL replay applies committed
		// updates onto the freshly built in-memory tables. Each node
		// bumps its own generation inside applyUpdate, so the epoch
		// gossip hook above is redundant for log-carried updates but
		// harmless (bumps are monotonic; an extra clear only costs a
		// cache refill).
		var rpc replog.RPC
		if s.cluster != nil {
			rpc = s.cluster.Transport()
		}
		self := opts.Cluster.Self
		if self == "" {
			self = "standalone"
		}
		s.applyAffected = make(map[uint64]int64)
		rl, err := replog.Open(replog.Config{
			Self:            self,
			Peers:           opts.Cluster.Peers,
			Dir:             opts.Cluster.Replog.Dir,
			Transport:       rpc,
			Apply:           s.applyUpdate,
			ElectionTimeout: opts.Cluster.Replog.ElectionTimeout,
			Heartbeat:       opts.Cluster.Replog.Heartbeat,
			SubmitTimeout:   opts.Cluster.Replog.SubmitTimeout,
		})
		if err != nil {
			if s.l2 != nil {
				_ = s.l2.Close()
			}
			return nil, fmt.Errorf("server: open replicated log: %w", err)
		}
		s.replog = rl
	}
	return s, nil
}

// Replog exposes the replicated update log (nil when not configured);
// experiments use it to observe roles and applied indexes.
func (s *Server) Replog() *replog.Node { return s.replog }

// Layer returns the physical layer for a canvas layer.
func (s *Server) Layer(canvasID string, idx int) (*fetch.PhysicalLayer, bool) {
	pl, ok := s.layers[layerKey(canvasID, idx)]
	return pl, ok
}

// DB exposes the backing database (examples issue updates through it).
func (s *Server) DB() *sqldb.DB { return s.db }

// BackendCache exposes cache statistics for experiment reports.
func (s *Server) BackendCache() *cache.LRU { return s.bcache }

// --- metadata served to the frontend ---

// LayerMeta is what the frontend needs to know about one layer:
// schema, placement parameters for client-side bbox computation, and
// which renderer to run.
type LayerMeta struct {
	CanvasID string `json:"canvas"`
	Index    int    `json:"index"`
	Static   bool   `json:"static"`
	Renderer string `json:"renderer"`
	// Table is the physical table serving this layer (the base table
	// for separable layers, the materialized layer table otherwise);
	// §4-style updates that should be visible in the view target it.
	Table     string    `json:"table"`
	Cols      []string  `json:"cols"`
	Types     ColTypes  `json:"types"`
	Separable bool      `json:"separable"`
	XIdx      int       `json:"xIdx"`
	YIdx      int       `json:"yIdx"`
	XScale    float64   `json:"xScale"`
	YScale    float64   `json:"yScale"`
	Radius    float64   `json:"radius"`
	BBoxIdx   [4]int    `json:"bboxIdx"`
	TileSizes []float64 `json:"tileSizes"`
	HasData   bool      `json:"hasData"`
	// LOD reports that the layer serves an aggregation pyramid: zoomed-
	// out windows return per-cell aggregate rows (base schema + appended
	// lod_* columns), so cached boxes must be refetched when the zoom
	// level changes; LODLevels is the pyramid height.
	LOD       bool `json:"lod,omitempty"`
	LODLevels int  `json:"lodLevels,omitempty"`
}

// RowBox computes the canvas bbox of a fetched row client-side.
func (lm *LayerMeta) RowBox(row storage.Row) geom.Rect {
	if lm.Separable {
		p := geom.Point{
			X: row[lm.XIdx].AsFloat() * lm.XScale,
			Y: row[lm.YIdx].AsFloat() * lm.YScale,
		}
		return geom.RectAround(p, lm.Radius)
	}
	return geom.Rect{
		MinX: row[lm.BBoxIdx[0]].AsFloat(),
		MinY: row[lm.BBoxIdx[1]].AsFloat(),
		MaxX: row[lm.BBoxIdx[2]].AsFloat(),
		MaxY: row[lm.BBoxIdx[3]].AsFloat(),
	}
}

// CanvasMeta describes one canvas to the frontend.
type CanvasMeta struct {
	ID     string      `json:"id"`
	W      float64     `json:"w"`
	H      float64     `json:"h"`
	Layers []LayerMeta `json:"layers"`
}

// AppMeta is the full /app response.
type AppMeta struct {
	Name          string       `json:"name"`
	Canvases      []CanvasMeta `json:"canvases"`
	Jumps         []spec.Jump  `json:"jumps"`
	InitialCanvas string       `json:"initialCanvas"`
	InitialX      float64      `json:"initialX"`
	InitialY      float64      `json:"initialY"`
	ViewportW     float64      `json:"viewportW"`
	ViewportH     float64      `json:"viewportH"`
}

// Meta builds the app metadata from the compiled spec + physical
// layers.
func (s *Server) Meta() *AppMeta {
	app := s.ca.Spec
	meta := &AppMeta{
		Name:          app.Name,
		Jumps:         app.Jumps,
		InitialCanvas: app.InitialCanvas,
		InitialX:      app.InitialX,
		InitialY:      app.InitialY,
		ViewportW:     app.ViewportW,
		ViewportH:     app.ViewportH,
	}
	for _, c := range app.Canvases {
		cm := CanvasMeta{ID: c.ID, W: c.W, H: c.H}
		for li, l := range c.Layers {
			pl := s.layers[layerKey(c.ID, li)]
			lm := LayerMeta{
				CanvasID: c.ID,
				Index:    li,
				Static:   l.Static,
				Renderer: l.Renderer,
			}
			if pl != nil && pl.Table != "" {
				lm.HasData = true
				lm.Table = pl.Table
				lm.Separable = pl.Separable
				lm.Radius = pl.Radius
				lm.XScale, lm.YScale = pl.XScale, pl.YScale
				for _, col := range pl.Schema {
					lm.Cols = append(lm.Cols, col.Name)
					lm.Types = append(lm.Types, col.Type)
				}
				if pl.Separable {
					lm.XIdx = pl.Schema.ColIndex(pl.XCol)
					lm.YIdx = pl.Schema.ColIndex(pl.YCol)
				} else {
					for i, b := range pl.BBoxCols {
						lm.BBoxIdx[i] = pl.Schema.ColIndex(b)
					}
				}
				for sz := range pl.TileMaps {
					lm.TileSizes = append(lm.TileSizes, sz)
				}
				if pl.LOD != nil {
					lm.LOD = true
					lm.LODLevels = len(pl.LOD.Levels)
				}
			}
			cm.Layers = append(cm.Layers, lm)
		}
		meta.Canvases = append(meta.Canvases, cm)
	}
	return meta
}

// --- HTTP surface ---

// Handler returns the backend's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/app", s.handleApp)
	mux.HandleFunc("/tile", s.handleTile)
	mux.HandleFunc("/batch", s.handleBatchDispatch)
	mux.HandleFunc("/dbox", s.handleDBox)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc(cluster.PeerPath, s.handlePeer)
	if s.replog != nil {
		mux.Handle("/replog/", s.traceMiddleware("replog.rpc", s.replog.Handler()))
	}
	s.mountDebug(mux)
	return mux
}

func (s *Server) handleApp(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Meta()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) layerFromQuery(r *http.Request) (*fetch.PhysicalLayer, error) {
	canvas := r.URL.Query().Get("canvas")
	layerStr := r.URL.Query().Get("layer")
	idx, err := strconv.Atoi(layerStr)
	if err != nil {
		return nil, fmt.Errorf("bad layer index %q", layerStr)
	}
	pl, ok := s.Layer(canvas, idx)
	if !ok {
		return nil, fmt.Errorf("no layer %s/%d", canvas, idx)
	}
	if pl.Table == "" {
		return nil, fmt.Errorf("layer %s/%d has no data", canvas, idx)
	}
	return pl, nil
}

func codecOf(r *http.Request) Codec {
	if c := r.URL.Query().Get("codec"); c != "" {
		return Codec(c)
	}
	return CodecJSON
}

func floatParam(r *http.Request, name string) (float64, error) {
	v, err := strconv.ParseFloat(r.URL.Query().Get(name), 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}

// serveTile produces the payload of one tile request under either
// database design, consulting the backend cache and coalescing
// concurrent identical requests onto one database query. In a cluster,
// a miss on a key another node owns is forwarded there instead of
// queried locally; localOnly (peer-originated requests) suppresses the
// forwarding so two nodes with diverging ring views can never bounce a
// request between each other.
func (s *Server) serveTile(ctx context.Context, pl *fetch.PhysicalLayer, design string, codec Codec, size float64, tid geom.TileID, localOnly bool) ([]byte, error) {
	key := fmt.Sprintf("%s/%s/%s", codec, design, fetch.TileKeyOf(layerKey(pl.CanvasID, pl.LayerIdx), size, tid))
	if data, ok := s.bcache.Get(key); ok {
		s.Stats.CacheHits.Add(1)
		obs.SpanFromContext(ctx).Attr("l1", "hit")
		return data.([]byte), nil
	}
	var sql string
	var args []storage.Value
	var err error
	switch design {
	case "spatial":
		sql, args = s.windowSQL(ctx, pl, tid.TileRect(size))
	case "mapping":
		sql, args, err = pl.TileSQLMapping(tid, size)
		if err != nil {
			return nil, badRequestError{err}
		}
	default:
		return nil, badRequestError{fmt.Errorf("unknown design %q", design)}
	}
	if !localOnly && s.cluster != nil && !s.cluster.Owns(key) {
		fr := &cluster.FillRequest{
			Key: key, Canvas: pl.CanvasID, Layer: pl.LayerIdx,
			Kind: "tile", Codec: string(codec), Design: design,
			Size: size, Col: tid.Col, Row: tid.Row,
		}
		return s.peerQuery(ctx, key, fr, sql, args, codec, false)
	}
	return s.cachedQuery(ctx, key, sql, args, codec, false)
}

// badRequestError marks an error as the caller's fault (HTTP 400);
// anything else surfaces as 500.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func httpStatusOf(err error) int {
	var bre badRequestError
	if errors.As(err, &bre) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// cachedQuery runs one cacheable request body: on a cache miss it
// executes the query (through the plan cache) and stores the payload.
// Unless disabled, concurrent identical keys collapse onto a single
// execution whose payload all callers share.
//
// The cache generation is captured before the query runs and checked
// before the payload is stored: a query that raced an /update holds
// pre-update rows and must not repopulate the just-cleared cache. The
// flight key embeds the generation too, so a request arriving after
// the update never coalesces onto (and never re-serves) a stale
// in-flight query.
func (s *Server) cachedQuery(ctx context.Context, key, sql string, args []storage.Value, codec Codec, memoize bool) ([]byte, error) {
	gen := s.cacheGen.Load()
	l2gen := s.l2Gen()
	if s.opts.DisableCoalescing {
		if payload, ok := s.l2ReadTraced(ctx, key); ok {
			s.putUnlessStale(gen, key, payload)
			return payload, nil
		}
		payload, err := s.runQuery(ctx, sql, args, codec, memoize)
		if err != nil {
			return nil, err
		}
		s.putUnlessStale(gen, key, payload)
		s.l2Fill(l2gen, key, payload)
		return payload, nil
	}
	v, err, dup := s.flight.Do(flightKey(gen, key), func() (any, error) {
		// Double-check the cache: a previous flight for this key may
		// have populated it while this caller was queuing for a slot.
		// Peek, not Get — the caller already recorded this key's miss,
		// and a second lookup must not double-count it.
		if data, ok := s.bcache.Peek(key); ok {
			s.Stats.CacheHits.Add(1)
			return data.([]byte), nil
		}
		// The persistent tier answers before the database: an L2 hit
		// is a checksum-verified disk read, promoted into L1 so the
		// next request never touches disk. Inside the flight, so N
		// concurrent misses do one L2 read.
		if payload, ok := s.l2ReadTraced(ctx, key); ok {
			s.putUnlessStale(gen, key, payload)
			return payload, nil
		}
		payload, err := s.runQuery(ctx, sql, args, codec, memoize)
		if err != nil {
			return nil, err
		}
		s.putUnlessStale(gen, key, payload)
		s.l2Fill(l2gen, key, payload)
		return payload, nil
	})
	if err != nil {
		return nil, err
	}
	if dup {
		s.Stats.CoalescedHits.Add(1)
	}
	return v.([]byte), nil
}

// l2Gen captures the persistent tier's generation before a query runs;
// l2Fill hands it back so a fill that raced an invalidation is dropped
// at flush time (the write-behind analog of putUnlessStale).
func (s *Server) l2Gen() uint64 {
	if s.l2 == nil {
		return 0
	}
	return s.l2.Generation()
}

// l2Read consults the persistent tile store (nil-safe). Every hit was
// checksum-verified by the store; a torn or corrupt record is a miss.
func (s *Server) l2Read(key string) ([]byte, bool) {
	if s.l2 == nil {
		return nil, false
	}
	return s.l2.Get(key)
}

// l2ReadTraced is l2Read wrapped in an "l2.read" span + stage histogram
// sample. The no-store case pays nothing (not even a span).
func (s *Server) l2ReadTraced(ctx context.Context, key string) ([]byte, bool) {
	if s.l2 == nil {
		return nil, false
	}
	_, sp := s.tracer().Start(ctx, "l2.read")
	start := time.Now()
	payload, ok := s.l2.Get(key)
	s.obs.stageL2Read.Observe(time.Since(start))
	sp.Attr("hit", ok)
	sp.End()
	return payload, ok
}

// l2Fill writes one payload back to the persistent tier through its
// bounded write-behind queue: never blocking the serving path (a full
// queue drops the fill), and stamped with the generation captured
// before the query ran so a fill racing an /update can never persist
// pre-update rows under the new generation.
func (s *Server) l2Fill(gen uint64, key string, payload []byte) {
	if s.l2 == nil {
		return
	}
	s.l2.PutAt(key, payload, gen)
}

// flightKey scopes a coalescing key to a cache generation.
func flightKey(gen int64, key string) string {
	return fmt.Sprintf("g%d/%s", gen, key)
}

// putUnlessStale stores a query payload produced under generation gen,
// guaranteeing no stale entry survives an /update race. A plain
// check-then-Put would be a TOCTOU hole: the generation could bump
// (and the cache clear) between the check and the Put, leaving the
// stale payload resident. Re-checking after the Put closes it — if
// the generation moved, either the Clear already wiped this entry or
// the Remove below does. The one benign loss: the Remove may also
// delete a fresh same-key entry written by a newer-generation flight
// in the window, which costs a cache miss, never staleness.
func (s *Server) putUnlessStale(gen int64, key string, payload []byte) {
	if s.cacheGen.Load() != gen {
		return
	}
	s.bcache.Put(key, payload, int64(len(payload)))
	if s.cacheGen.Load() != gen {
		s.bcache.Remove(key)
	}
}

// handleTile answers one static-tile request under either database
// design.
func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	s.Stats.TileRequests.Add(1)
	pl, err := s.layerFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	size, err := floatParam(r, "size")
	if err != nil || size <= 0 {
		http.Error(w, "bad size", http.StatusBadRequest)
		return
	}
	col, err1 := strconv.Atoi(q.Get("col"))
	row, err2 := strconv.Atoi(q.Get("row"))
	if err1 != nil || err2 != nil || col < 0 || row < 0 {
		http.Error(w, "bad col/row", http.StatusBadRequest)
		return
	}
	design := q.Get("design")
	if design == "" {
		design = "spatial"
	}
	codec := codecOf(r)
	ctx, sp := s.startRequestSpan(r, "http.tile")
	sp.Attr("canvas", pl.CanvasID)
	start := time.Now()
	payload, err := s.serveTile(ctx, pl, design, codec, size, geom.TileID{Col: col, Row: row}, false)
	s.obs.stageItem.Observe(time.Since(start))
	sp.End()
	if err != nil {
		http.Error(w, err.Error(), httpStatusOf(err))
		return
	}
	s.writePayload(w, codec, payload)
}

// handleDBox answers one dynamic-box request (always the spatial
// design, §3.1).
func (s *Server) handleDBox(w http.ResponseWriter, r *http.Request) {
	s.Stats.BoxRequests.Add(1)
	pl, err := s.layerFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var box geom.Rect
	for _, p := range []struct {
		name string
		dst  *float64
	}{
		{"minx", &box.MinX}, {"miny", &box.MinY}, {"maxx", &box.MaxX}, {"maxy", &box.MaxY},
	} {
		v, err := floatParam(r, p.name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		*p.dst = v
	}
	if !box.Valid() {
		http.Error(w, "invalid box", http.StatusBadRequest)
		return
	}
	codec := codecOf(r)
	ctx, sp := s.startRequestSpan(r, "http.dbox")
	sp.Attr("canvas", pl.CanvasID)
	start := time.Now()
	payload, err := s.serveBox(ctx, pl, codec, box, false, false)
	s.obs.stageItem.Observe(time.Since(start))
	sp.End()
	if err != nil {
		http.Error(w, err.Error(), httpStatusOf(err))
		return
	}
	s.writePayload(w, codec, payload)
}

// serveBox produces the payload of one dynamic-box request, with the
// same cache + coalescing + cluster-routing treatment as serveTile.
// memoize asks the query to park its decoded rows for the v3 delta
// planner — only worth paying for requests whose payload can become a
// delta base (v3 batches); the v1/v2 paths skip it.
func (s *Server) serveBox(ctx context.Context, pl *fetch.PhysicalLayer, codec Codec, box geom.Rect, memoize, localOnly bool) ([]byte, error) {
	key := s.boxCacheKey(pl, codec, box)
	if data, ok := s.bcache.Get(key); ok {
		s.Stats.CacheHits.Add(1)
		obs.SpanFromContext(ctx).Attr("l1", "hit")
		return data.([]byte), nil
	}
	sql, args := s.windowSQL(ctx, pl, box)
	if !localOnly && s.cluster != nil && !s.cluster.Owns(key) {
		fr := &cluster.FillRequest{
			Key: key, Canvas: pl.CanvasID, Layer: pl.LayerIdx,
			Kind: "dbox", Codec: string(codec),
			MinX: box.MinX, MinY: box.MinY, MaxX: box.MaxX, MaxY: box.MaxY,
		}
		return s.peerQuery(ctx, key, fr, sql, args, codec, memoize)
	}
	return s.cachedQuery(ctx, key, sql, args, codec, memoize)
}

// windowSQL builds the database query answering one window (a tile
// rectangle or a dynamic box) against a layer: auto-LOD layers route to
// the aggregation-pyramid level matching the window's zoom, falling
// through to raw rows at leaf level; everything else queries raw rows.
// Level selection is a pure function of the window and the build-time
// pyramid, so a cache key's payload is the same no matter which node —
// or which side of a cluster forward — computes it, and cache keys need
// no level component. The tuple–tile mapping design keeps serving raw
// rows: its precomputed join is already bounded by tile extent.
func (s *Server) windowSQL(ctx context.Context, pl *fetch.PhysicalLayer, window geom.Rect) (string, []storage.Value) {
	if lvl := pl.LODLevelFor(window); lvl >= 0 {
		s.Stats.LODQueries.Add(1)
		obs.SpanFromContext(ctx).Attr("lodLevel", lvl)
		return pl.LODWindowSQL(lvl, window)
	}
	return pl.WindowSQL(window)
}

// preparedSelect returns the parsed form of sql, parsing at most once
// per resident statement text. Layer query shapes are constant strings
// with '?' placeholders, so after warm-up the hot path never touches
// the parser; the cache is bounded (Options.PlanCacheSize, LRU), so
// ad-hoc SQL through RunSelect cannot grow it without limit.
func (s *Server) preparedSelect(sql string) (*sqldb.SelectStmt, error) {
	if v, ok := s.plans.Get(sql); ok {
		return v.(*sqldb.SelectStmt), nil
	}
	st, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqldb.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("server: layer statement is not a SELECT: %T", st)
	}
	// Concurrent parsers may race here; either winner is equivalent.
	s.plans.Put(sql, sel, 1)
	return sel, nil
}

func (s *Server) runQuery(ctx context.Context, sql string, args []storage.Value, codec Codec, memoize bool) ([]byte, error) {
	sel, err := s.preparedSelect(sql)
	if err != nil {
		return nil, err
	}
	if hook := s.queryHook; hook != nil {
		hook()
	}
	_, sp := s.tracer().Start(ctx, "db.query")
	start := time.Now()
	s.Stats.DBQueries.Add(1)
	res, err := s.db.RunSelect(sel, args...)
	elapsed := time.Since(start)
	s.obs.stageDB.Observe(elapsed)
	if err != nil {
		sp.Attr("err", err.Error())
		sp.End()
		return nil, err
	}
	sp.Attr("rows", len(res.Rows))
	sp.End()
	s.Stats.QueryNanos.Add(elapsed.Nanoseconds())
	s.Stats.RowsServed.Add(int64(len(res.Rows)))
	dr := responseFromResult(res)
	payload, err := Encode(dr, codec)
	if err != nil {
		return nil, err
	}
	if memoize {
		// The decoded rows are in hand right now; parking them in the
		// content-addressed delta memo means a later delta plan against
		// this payload never re-decodes it.
		s.memoizeDecoded(wire.PayloadID(payload), codec, dr, len(payload))
	}
	return payload, nil
}

func (s *Server) writePayload(w http.ResponseWriter, codec Codec, payload []byte) {
	if codec == CodecBinary {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	s.Stats.BytesServed.Add(int64(len(payload)))
	_, _ = w.Write(payload)
}

// UpdateRequest is the §4 update-model request: MGH "wants an update
// model for Kyrix so they can edit and tag relevant data". ID, when
// set, is a client-chosen idempotency key (unique per logical update):
// on the replicated path the log dedupes submissions sharing it, so a
// client that got an ambiguous 503 can re-POST the same body without
// double-applying a non-idempotent statement.
type UpdateRequest struct {
	ID   string     `json:"id,omitempty"`
	SQL  string     `json:"sql"`
	Args []ArgValue `json:"args,omitempty"`
}

// ArgValue is a wire-encoded storage.Value.
type ArgValue struct {
	Kind storage.ColType `json:"k"`
	I    int64           `json:"i,omitempty"`
	F    float64         `json:"f,omitempty"`
	S    string          `json:"s,omitempty"`
	B    bool            `json:"b,omitempty"`
}

// Value converts to a storage.Value.
func (a ArgValue) Value() storage.Value {
	return storage.Value{Kind: a.Kind, I: a.I, F: a.F, S: a.S, B: a.B}
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, sp := s.startRequestSpan(r, "http.update")
	sp.Attr("replicated", s.replog != nil)
	updStart := time.Now()
	defer func() {
		s.obs.stageUpdate.Observe(time.Since(updStart))
		sp.End()
	}()
	r = r.WithContext(ctx)
	var n int64
	if s.replog != nil {
		// Replicated path: the update becomes a quorum-committed log
		// command. Submit returns once the command is committed AND
		// applied on this node (read-your-writes for this client),
		// whichever node leads; applyUpdate did the actual Exec.
		cmd, err := json.Marshal(&req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var idx uint64
		if req.ID != "" {
			idx, err = s.replog.SubmitWithID(r.Context(), "c/"+req.ID, cmd)
		} else {
			idx, err = s.replog.Submit(r.Context(), cmd)
		}
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, replog.ErrNoLeader) || errors.Is(err, replog.ErrClosed) ||
				errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				// Not committed — or not KNOWN committed: the update may
				// have reached the log before the error. A retry is
				// exactly-once only when the request carries an id for
				// the log to dedupe on; without one, retrying a
				// non-idempotent statement risks applying it twice.
				status = http.StatusServiceUnavailable
			}
			http.Error(w, err.Error(), status)
			return
		}
		// A deduped retry lands on the original index, whose affected
		// count may already have been claimed (or pruned) — it then
		// reports 0, but the mutation itself happened exactly once.
		s.applyMu.Lock()
		n = s.applyAffected[idx]
		delete(s.applyAffected, idx)
		s.applyMu.Unlock()
	} else {
		args := make([]storage.Value, len(req.Args))
		for i, a := range req.Args {
			args[i] = a.Value()
		}
		var err error
		n, err = s.execUpdate(req.SQL, args)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	s.Stats.Updates.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int64{"affected": n})
}

// applyUpdate is the replicated log's state-machine callback: one
// committed update command, applied in log order on every member. It is
// execUpdate minus the cluster epoch bump — with the log in charge,
// every node runs this same transition itself, so gossiping "something
// changed" to peers is redundant. The affected-row count is parked for
// the handler that submitted the command; entries for commands
// submitted elsewhere (or replayed on restart) are pruned by bound.
func (s *Server) applyUpdate(index uint64, cmd []byte) error {
	var req UpdateRequest
	if err := json.Unmarshal(cmd, &req); err != nil {
		return fmt.Errorf("server: decode update command %d: %w", index, err)
	}
	args := make([]storage.Value, len(req.Args))
	for i, a := range req.Args {
		args[i] = a.Value()
	}
	s.epochMu.Lock()
	n, err := s.db.Exec(req.SQL, args...)
	if err != nil {
		s.epochMu.Unlock()
		return err
	}
	s.cacheGen.Add(1)
	s.bcache.Clear()
	if s.l2 != nil {
		if _, berr := s.l2.Bump(); berr != nil {
			err = fmt.Errorf("server: invalidate L2 tile store: %w", berr)
		}
	}
	s.epochMu.Unlock()
	s.applyMu.Lock()
	s.applyAffected[index] = n
	if len(s.applyAffected) > 1024 {
		for k := range s.applyAffected {
			if k+1024 < index {
				delete(s.applyAffected, k)
			}
		}
	}
	s.applyMu.Unlock()
	return err
}

// execUpdate applies one update statement and invalidates cached
// responses by dropping the whole backend cache (coarse but correct —
// the paper defers caching-under-updates). The generation bump comes
// before the Clear: any query that started earlier sees a stale
// generation and skips its cache store, so an in-flight coalesced
// query cannot repopulate the cache with pre-update rows after the
// Clear. The whole transition runs under the epoch write lock (see
// Server.epochMu), so a v3 delta plan is never half-old half-new:
// in-flight plans drain first, later plans find the base evicted.
func (s *Server) execUpdate(sql string, args []storage.Value) (int64, error) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	n, err := s.db.Exec(sql, args...)
	if err != nil {
		return 0, err
	}
	s.cacheGen.Add(1)
	s.bcache.Clear()
	if s.l2 != nil {
		// The persistent tier invalidates by generation prefix: one
		// fsynced marker record makes every resident payload invisible
		// (across restarts too) without touching the records on disk.
		if _, err := s.l2.Bump(); err != nil {
			return 0, fmt.Errorf("server: invalidate L2 tile store: %w", err)
		}
	}
	if s.cluster != nil {
		// Bump the cluster epoch inside the same epoch-locked
		// transition: peers learn on their next exchange with this
		// node (the epoch rides every /peer request and response) and
		// clear their own caches.
		s.cluster.Bump()
	}
	return n, nil
}

// --- versioned /stats ---

// ServingStats is the request-path section of a StatsSnapshot.
type ServingStats struct {
	TileRequests     int64 `json:"tileRequests"`
	BoxRequests      int64 `json:"boxRequests"`
	BatchRequests    int64 `json:"batchRequests"`
	CacheHits        int64 `json:"cacheHits"`
	CoalescedHits    int64 `json:"coalescedHits"`
	DBQueries        int64 `json:"dbQueries"`
	RowsServed       int64 `json:"rowsServed"`
	BytesServed      int64 `json:"bytesServed"`
	Updates          int64 `json:"updates"`
	QueryNanos       int64 `json:"queryNanos"`
	WireBytes        int64 `json:"wireBytes"`
	DeltaFrames      int64 `json:"deltaFrames"`
	CompressedFrames int64 `json:"compressedFrames"`
	DBRowsScanned    int64 `json:"dbRowsScanned"`
}

// L1Stats is the in-memory backend cache section of a StatsSnapshot.
type L1Stats struct {
	Bytes    int64 `json:"bytes"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Shards   int   `json:"shards"`
}

// CacheStats groups both cache tiers; L2 is absent when the persistent
// tile store is disabled.
type CacheStats struct {
	L1 L1Stats              `json:"l1"`
	L2 *store.StatsSnapshot `json:"l2,omitempty"`
}

// ClusterStats is the cluster section of a StatsSnapshot (nil when
// serving standalone).
type ClusterStats struct {
	Epoch          int64 `json:"epoch"`
	PeerFills      int64 `json:"peerFills"`
	PeerErrors     int64 `json:"peerErrors"`
	PeerServes     int64 `json:"peerServes"`
	LocalFallbacks int64 `json:"localFallbacks"`
	HotReplicas    int64 `json:"hotReplicas"`
	EpochAdoptions int64 `json:"epochAdoptions"`
	// Peers is per-peer transport health: failures, retries, and
	// circuit-breaker state, keyed by peer base URL.
	Peers map[string]cluster.PeerStats `json:"peers,omitempty"`
}

// LODStats is the aggregation-pyramid section of a StatsSnapshot.
type LODStats struct {
	Queries int64 `json:"queries"`
}

// BuildInfo identifies the running binary in the v2 snapshot.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
}

// StatsSnapshot is the versioned structured /stats response (schema
// version 2). GET /stats serves it by default; GET /stats?v=1 serves
// the legacy flat counter map for older scrapers.
type StatsSnapshot struct {
	V             int           `json:"v"`
	UptimeSeconds float64       `json:"uptimeSeconds"`
	Build         BuildInfo     `json:"build"`
	Serving       ServingStats  `json:"serving"`
	Cache         CacheStats    `json:"cache"`
	Cluster       *ClusterStats `json:"cluster,omitempty"`
	Replog        *replog.Stats `json:"replog,omitempty"`
	LOD           LODStats      `json:"lod"`
}

// Snapshot collects the server's counters into the versioned schema.
func (s *Server) Snapshot() StatsSnapshot {
	bc := s.bcache.Stats()
	snap := StatsSnapshot{
		V:             2,
		UptimeSeconds: time.Since(s.obs.start).Seconds(),
		Build:         BuildInfo{Version: buildVersion(), GoVersion: runtime.Version()},
		Serving: ServingStats{
			TileRequests:     s.Stats.TileRequests.Load(),
			BoxRequests:      s.Stats.BoxRequests.Load(),
			BatchRequests:    s.Stats.BatchRequests.Load(),
			CacheHits:        s.Stats.CacheHits.Load(),
			CoalescedHits:    s.Stats.CoalescedHits.Load(),
			DBQueries:        s.Stats.DBQueries.Load(),
			RowsServed:       s.Stats.RowsServed.Load(),
			BytesServed:      s.Stats.BytesServed.Load(),
			Updates:          s.Stats.Updates.Load(),
			QueryNanos:       s.Stats.QueryNanos.Load(),
			WireBytes:        s.Stats.WireBytes.Load(),
			DeltaFrames:      s.Stats.DeltaFrames.Load(),
			CompressedFrames: s.Stats.CompressedFrames.Load(),
			DBRowsScanned:    s.db.Stats().RowsScanned,
		},
		Cache: CacheStats{
			L1: L1Stats{
				Bytes:    bc.Bytes,
				Hits:     bc.Hits,
				Misses:   bc.Misses,
				Admitted: bc.Admitted,
				Rejected: bc.Rejected,
				Shards:   s.bcache.ShardCount(),
			},
		},
		LOD: LODStats{Queries: s.Stats.LODQueries.Load()},
	}
	if s.l2 != nil {
		l2 := s.l2.Snapshot()
		snap.Cache.L2 = &l2
	}
	if s.cluster != nil {
		cs := &s.cluster.Stats
		snap.Cluster = &ClusterStats{
			Epoch:          s.cluster.Epoch(),
			PeerFills:      cs.PeerFills.Load(),
			PeerErrors:     cs.PeerErrors.Load(),
			PeerServes:     cs.PeerServes.Load(),
			LocalFallbacks: cs.LocalFallbacks.Load(),
			HotReplicas:    cs.HotReplicas.Load(),
			EpochAdoptions: cs.EpochAdoptions.Load(),
			Peers:          s.cluster.Transport().PeerStatsSnapshot(),
		}
	}
	if s.replog != nil {
		rs := s.replog.Snapshot()
		snap.Replog = &rs
	}
	return snap
}

// handleStats serves the versioned structured schema by default and
// the legacy v1 flat counter map under ?v=1, byte-compatible with the
// pre-versioning response so existing scrapers keep working.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("v") == "1" {
		_ = json.NewEncoder(w).Encode(s.legacyStats())
		return
	}
	_ = json.NewEncoder(w).Encode(s.Snapshot())
}

func (s *Server) legacyStats() map[string]int64 {
	bc := s.bcache.Stats()
	out := map[string]int64{
		"tileRequests":         s.Stats.TileRequests.Load(),
		"boxRequests":          s.Stats.BoxRequests.Load(),
		"batchRequests":        s.Stats.BatchRequests.Load(),
		"cacheHits":            s.Stats.CacheHits.Load(),
		"coalescedHits":        s.Stats.CoalescedHits.Load(),
		"dbQueries":            s.Stats.DBQueries.Load(),
		"rowsServed":           s.Stats.RowsServed.Load(),
		"bytesServed":          s.Stats.BytesServed.Load(),
		"updates":              s.Stats.Updates.Load(),
		"queryNanos":           s.Stats.QueryNanos.Load(),
		"wireBytes":            s.Stats.WireBytes.Load(),
		"deltaFrames":          s.Stats.DeltaFrames.Load(),
		"compressedFrames":     s.Stats.CompressedFrames.Load(),
		"lodQueries":           s.Stats.LODQueries.Load(),
		"dbRowsScanned":        s.db.Stats().RowsScanned,
		"backendCacheBytes":    bc.Bytes,
		"backendCacheHits":     bc.Hits,
		"backendCacheMisses":   bc.Misses,
		"backendCacheAdmitted": bc.Admitted,
		"backendCacheRejected": bc.Rejected,
		"backendCacheShards":   int64(s.bcache.ShardCount()),
	}
	if s.cluster != nil {
		cs := &s.cluster.Stats
		out["clusterEpoch"] = s.cluster.Epoch()
		out["peerFills"] = cs.PeerFills.Load()
		out["peerErrors"] = cs.PeerErrors.Load()
		out["peerServes"] = cs.PeerServes.Load()
		out["localFallbacks"] = cs.LocalFallbacks.Load()
		out["hotReplicas"] = cs.HotReplicas.Load()
		out["epochAdoptions"] = cs.EpochAdoptions.Load()
	}
	return out
}

// L2 exposes the persistent tile store (nil when disabled); experiment
// harnesses read its stats.
func (s *Server) L2() *store.Store { return s.l2 }

// Close releases the server's background resources in dependency
// order: the replicated log first (it stops elections and replication,
// drains every committed entry through applyUpdate, and fsyncs its
// WAL — applyUpdate touches the caches and L2, so they must still be
// open), then the persistent tile store (write-behind queue drained so
// fills accepted before Close are readable after the next Open). The
// HTTP listener is owned by the caller and closed separately.
// Idempotent.
func (s *Server) Close() error {
	var err error
	if s.replog != nil {
		if cerr := s.replog.Close(); cerr != nil && !errors.Is(cerr, replog.ErrClosed) {
			err = cerr
		}
	}
	if s.l2 != nil {
		if cerr := s.l2.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
