package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/geom"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

// TestCoalescingOneQuery asserts the singleflight contract end to end:
// N identical concurrent tile requests run exactly one database query
// and all receive the same payload. The query hook holds the single
// execution open until every caller has joined the flight, making the
// assertion deterministic rather than timing-dependent.
func TestCoalescingOneQuery(t *testing.T) {
	srv, hs := newPointsServer(t, 500, 4096, 2048)
	const n = 12
	release := make(chan struct{})
	srv.queryHook = func() { <-release }

	selectsBefore := srv.DB().Stats().Selects
	// Flight keys are scoped to the backend-cache generation (0 on a
	// fresh server); see flightKey.
	key := flightKey(0, fmt.Sprintf("%s/%s/%s", CodecJSON, "spatial", fetch.TileKeyOf("main/0", 512, geom.TileID{Col: 1, Row: 1})))

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(hs.URL + "/tile?canvas=main&layer=0&size=512&col=1&row=1")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("%s: %s", resp.Status, body)
				return
			}
			bodies[i] = body
		}(i)
	}

	deadline := time.Now().Add(10 * time.Second)
	for srv.flight.Pending(key) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests coalesced onto %q", srv.flight.Pending(key), n, key)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d got a different payload", i)
		}
	}
	if got := srv.DB().Stats().Selects - selectsBefore; got != 1 {
		t.Fatalf("database ran %d SELECTs for %d identical requests, want 1", got, n)
	}
	if got := srv.Stats.DBQueries.Load(); got != 1 {
		t.Fatalf("DBQueries = %d, want 1", got)
	}
	if got := srv.Stats.CoalescedHits.Load(); got != n-1 {
		t.Fatalf("CoalescedHits = %d, want %d", got, n-1)
	}
}

// TestCoalescingDisabled checks the ablation knob: with
// DisableCoalescing every concurrent miss runs its own query.
func TestCoalescingDisabled(t *testing.T) {
	srv, hs := newPointsServer(t, 200, 4096, 2048)
	srv.opts.DisableCoalescing = true
	var paused atomic.Bool
	release := make(chan struct{})
	srv.queryHook = func() {
		if paused.Load() {
			<-release
		}
	}
	paused.Store(true)
	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(hs.URL + "/tile?canvas=main&layer=0&size=512&col=3&row=1")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	// Wait until all four queries are in flight (each holds the hook).
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats.DBQueries.Load() < n {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	paused.Store(false)
	close(release)
	wg.Wait()
	if got := srv.Stats.DBQueries.Load(); got != n {
		t.Fatalf("DBQueries = %d, want %d (coalescing disabled)", got, n)
	}
	if got := srv.Stats.CoalescedHits.Load(); got != 0 {
		t.Fatalf("CoalescedHits = %d, want 0", got)
	}
}

// TestHandlerRaceStress hammers the full HTTP surface from many
// goroutines; run with -race it is the concurrency smoke test for the
// serving pipeline (sharded cache, coalescing, batch fan-out).
func TestHandlerRaceStress(t *testing.T) {
	srv, hs := newPointsServer(t, 1000, 4096, 2048)
	client := hs.Client()

	get := func(u string) error {
		resp, err := client.Get(hs.URL + u)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", u, resp.Status)
		}
		return nil
	}
	post := func(u string, body []byte) error {
		resp, err := client.Post(hs.URL+u, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: %s", u, resp.Status)
		}
		return nil
	}

	const workers = 16
	const iters = 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var err error
				switch (g + i) % 5 {
				case 0:
					err = get(fmt.Sprintf("/tile?canvas=main&layer=0&size=512&col=%d&row=%d", i%8, g%4))
				case 1:
					err = get(fmt.Sprintf("/dbox?canvas=main&layer=0&minx=%d&miny=%d&maxx=%d&maxy=%d",
						(i%4)*512, (g%2)*512, (i%4)*512+512, (g%2)*512+512))
				case 2:
					body, _ := json.Marshal(BatchRequest{
						Canvas: "main", Layer: 0, Size: 512,
						Tiles: []TileRef{{Col: i % 8, Row: 0}, {Col: i % 8, Row: 1}, {Col: (i + 1) % 8, Row: g % 4}},
					})
					err = post("/batch", body)
				case 3:
					err = get("/stats")
				case 4:
					err = get("/app")
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if srv.Stats.TileRequests.Load() == 0 || srv.Stats.BatchRequests.Load() == 0 {
		t.Fatal("stress test did not exercise tile/batch paths")
	}
}

// TestBatchEndpoint checks the wire contract of POST /batch: payloads
// identical to single-tile GETs, per-tile errors isolated, and request
// validation.
func TestBatchEndpoint(t *testing.T) {
	_, hs := newPointsServer(t, 2000, 4096, 2048)

	single := func(col, row int) []byte {
		resp, err := http.Get(fmt.Sprintf("%s/tile?canvas=main&layer=0&size=512&col=%d&row=%d", hs.URL, col, row))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single tile: %s: %s", resp.Status, body)
		}
		return body
	}

	doBatch := func(req BatchRequest) (*BatchResponse, int) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(hs.URL+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return nil, resp.StatusCode
		}
		var out BatchResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decode batch: %v", err)
		}
		return &out, resp.StatusCode
	}

	out, code := doBatch(BatchRequest{
		Canvas: "main", Layer: 0, Size: 512,
		Tiles: []TileRef{{Col: 0, Row: 0}, {Col: 1, Row: 0}, {Col: 2, Row: 1}, {Col: -1, Row: 0}},
	})
	if code != http.StatusOK {
		t.Fatalf("batch status = %d", code)
	}
	if len(out.Tiles) != 4 {
		t.Fatalf("batch returned %d tiles", len(out.Tiles))
	}
	for i, want := range []struct{ col, row int }{{0, 0}, {1, 0}, {2, 1}} {
		bt := out.Tiles[i]
		if bt.Col != want.col || bt.Row != want.row || bt.Err != "" {
			t.Fatalf("tile %d = %+v", i, bt)
		}
		if !bytes.Equal(bt.Data, single(want.col, want.row)) {
			t.Fatalf("tile %d payload differs from single GET", i)
		}
		if _, err := Decode(bt.Data, CodecJSON); err != nil {
			t.Fatalf("tile %d payload undecodable: %v", i, err)
		}
	}
	if out.Tiles[3].Err == "" || out.Tiles[3].Data != nil {
		t.Fatalf("negative tile = %+v, want per-tile error", out.Tiles[3])
	}

	// Binary codec round-trips through the base64 envelope.
	out, code = doBatch(BatchRequest{
		Canvas: "main", Layer: 0, Size: 512, Codec: CodecBinary,
		Tiles: []TileRef{{Col: 0, Row: 0}},
	})
	if code != http.StatusOK || out.Tiles[0].Err != "" {
		t.Fatalf("binary batch failed: code=%d %+v", code, out)
	}
	if _, err := Decode(out.Tiles[0].Data, CodecBinary); err != nil {
		t.Fatalf("binary payload undecodable: %v", err)
	}

	// Validation failures.
	if _, code := doBatch(BatchRequest{Canvas: "main", Layer: 0, Size: 512}); code != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", code)
	}
	if _, code := doBatch(BatchRequest{Canvas: "main", Layer: 0, Size: 0, Tiles: []TileRef{{0, 0}}}); code != http.StatusBadRequest {
		t.Fatalf("zero size status = %d", code)
	}
	if _, code := doBatch(BatchRequest{Canvas: "nope", Layer: 0, Size: 512, Tiles: []TileRef{{0, 0}}}); code != http.StatusBadRequest {
		t.Fatalf("bad canvas status = %d", code)
	}
	if _, code := doBatch(BatchRequest{Canvas: "main", Layer: 0, Size: 512, Design: "quantum", Tiles: []TileRef{{0, 0}}}); code != http.StatusBadRequest {
		t.Fatalf("unknown design status = %d, want request-level 400", code)
	}
	big := BatchRequest{Canvas: "main", Layer: 0, Size: 512}
	for i := 0; i <= MaxBatchTiles; i++ {
		big.Tiles = append(big.Tiles, TileRef{Col: i, Row: 0})
	}
	if _, code := doBatch(big); code != http.StatusBadRequest {
		t.Fatalf("oversize batch status = %d", code)
	}
	resp, err := http.Get(hs.URL + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /batch status = %d", resp.StatusCode)
	}
}

// multiLayerApp builds an app with several canvases over the shared
// points table, to exercise parallel precompute.
func multiLayerApp(t *testing.T, db *sqldb.DB, canvases int) *spec.CompiledApp {
	t.Helper()
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &spec.App{Name: "multi", InitialCanvas: "c0",
		InitialX: 2048, InitialY: 1024, ViewportW: 512, ViewportH: 512}
	for i := 0; i < canvases; i++ {
		app.Canvases = append(app.Canvases, spec.Canvas{
			ID: fmt.Sprintf("c%d", i), W: 4096, H: 2048,
			Transforms: []spec.Transform{{
				ID: "t", Query: "SELECT * FROM points",
				Columns: []spec.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
				},
			}},
			Layers: []spec.Layer{{
				TransformID: "t",
				Placement:   &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:    "dots",
			}},
		})
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

// TestParallelPrecompute materializes a multi-canvas app with a worker
// pool and verifies every layer came out whole, including the shared
// base-table index being built exactly once despite concurrent
// requests for it.
func TestParallelPrecompute(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	d := workload.Uniform(400, 4096, 2048, 7)
	for _, p := range d.Points {
		if err := db.InsertRow("points", storage.Row{
			storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
		}); err != nil {
			t.Fatal(err)
		}
	}
	const canvases = 6
	ca := multiLayerApp(t, db, canvases)
	srv, err := New(db, ca, Options{
		CacheBytes:            4 << 20,
		PrecomputeParallelism: 4,
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    []float64{512},
			MappingIndex: sqldb.IndexBTree,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < canvases; i++ {
		pl, ok := srv.Layer(fmt.Sprintf("c%d", i), 0)
		if !ok || pl.Table == "" {
			t.Fatalf("canvas c%d layer missing after parallel precompute", i)
		}
		if len(pl.TileMaps) != 1 {
			t.Fatalf("canvas c%d tile maps = %v", i, pl.TileMaps)
		}
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	for i := 0; i < canvases; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/tile?canvas=c%d&layer=0&size=512&col=0&row=0", hs.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("canvas c%d tile: %s: %s", i, resp.Status, body)
		}
	}
}

// TestParallelPrecomputeFirstErrorWins: a layer that fails to
// materialize surfaces exactly one error from New.
func TestParallelPrecomputeFirstErrorWins(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	ca := multiLayerApp(t, db, 4)
	// Sabotage one canvas's transform to reference a missing table.
	ca.Spec.Canvases[2].Transforms[0].Query = "SELECT * FROM missing_table"
	_, err := New(db, ca, Options{
		CacheBytes:            1 << 20,
		PrecomputeParallelism: 4,
		Precompute:            fetch.Options{BuildSpatial: true},
	})
	if err == nil {
		t.Fatal("New should fail when a layer cannot materialize")
	}
}
