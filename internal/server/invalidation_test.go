package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"kyrix/internal/fetch"
	"kyrix/internal/geom"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
)

// TestUpdateDropsStaleFlight pins the ROADMAP "coalescing under
// updates" fix: a query in flight when /update lands must not
// repopulate the just-cleared backend cache with pre-update rows. The
// query hook holds the tile query open across the update, so the race
// is deterministic.
func TestUpdateDropsStaleFlight(t *testing.T) {
	srv, hs := newPointsServer(t, 500, 4096, 2048)

	hold := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	srv.queryHook = func() {
		once.Do(func() {
			close(started)
			<-hold
		})
	}

	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/tile?canvas=main&layer=0&size=512&col=1&row=1")
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			done <- fmt.Errorf("%s: %s", resp.Status, body)
			return
		}
		done <- nil
	}()

	<-started // the tile query is now in flight, pre-update

	// The update bumps the cache generation and clears the cache while
	// that query is still running.
	upd := UpdateRequest{
		SQL:  "UPDATE points SET val = ? WHERE id = ?",
		Args: []ArgValue{{Kind: storage.TFloat64, F: 1.5}, {Kind: storage.TInt64, I: 1}},
	}
	body, _ := json.Marshal(upd)
	resp, err := http.Post(hs.URL+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d", resp.StatusCode)
	}

	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The stale query completed after the update — its payload must
	// not be resident in the backend cache.
	key := fmt.Sprintf("%s/%s/%s", CodecJSON, "spatial",
		fetch.TileKeyOf("main/0", 512, geom.TileID{Col: 1, Row: 1}))
	if srv.bcache.Contains(key) {
		t.Fatal("stale pre-update query repopulated the backend cache")
	}

	// A fresh request for the same tile runs a new (post-update)
	// query instead of hitting a stale cache entry or flight.
	dbqBefore := srv.Stats.DBQueries.Load()
	resp, err = http.Get(hs.URL + "/tile?canvas=main&layer=0&size=512&col=1&row=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := srv.Stats.DBQueries.Load() - dbqBefore; got != 1 {
		t.Fatalf("post-update request ran %d queries, want a fresh one", got)
	}
	// And that fresh result is cached under the new generation.
	if !srv.bcache.Contains(key) {
		t.Fatal("post-update query should repopulate the cache")
	}
}

// TestPlanCacheBounded pins the plan-cache satellite: ad-hoc statement
// shapes through preparedSelect cannot grow the cache past
// PlanCacheSize; hot shapes stay resident under LRU.
func TestPlanCacheBounded(t *testing.T) {
	srv, _ := newPointsServer(t, 50, 4096, 2048)
	cap := srv.opts.PlanCacheSize
	if cap == 0 {
		cap = 512 // the default applied in New
	}
	for i := 0; i < cap+300; i++ {
		sql := fmt.Sprintf("SELECT id FROM points WHERE id = %d", i)
		if _, err := srv.preparedSelect(sql); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.plans.Stats().Entries; got > cap {
		t.Fatalf("plan cache holds %d entries, cap %d", got, cap)
	}
	// Repeating a resident statement is a cache hit (no reparse): the
	// most recent statement survives the churn above.
	last := fmt.Sprintf("SELECT id FROM points WHERE id = %d", cap+299)
	hitsBefore := srv.plans.Stats().Hits
	if _, err := srv.preparedSelect(last); err != nil {
		t.Fatal(err)
	}
	if srv.plans.Stats().Hits != hitsBefore+1 {
		t.Fatal("resident plan should be served from the cache")
	}
}

// TestPlanCacheCustomCap verifies the PlanCacheSize knob reaches the
// cache construction.
func TestPlanCacheCustomCap(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE q (id INT, x DOUBLE, y DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.InsertRow("q", storage.Row{
			storage.I64(int64(i)), storage.F64(float64(i)), storage.F64(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &spec.App{
		Name: "q",
		Canvases: []spec.Canvas{{
			ID: "main", W: 1024, H: 1024,
			Transforms: []spec.Transform{{
				ID: "t", Query: "SELECT * FROM q",
				Columns: []spec.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"},
				},
			}},
			Layers: []spec.Layer{{
				TransformID: "t",
				Placement:   &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:    "dots",
			}},
		}},
		InitialCanvas: "main", InitialX: 512, InitialY: 512,
		ViewportW: 256, ViewportH: 256,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, ca, Options{
		PlanCacheSize: 4,
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    []float64{512},
			MappingIndex: sqldb.IndexBTree,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := srv.preparedSelect(fmt.Sprintf("SELECT id FROM q WHERE id = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.plans.Stats().Entries; got > 4 {
		t.Fatalf("plan cache holds %d entries, cap 4", got)
	}
}
