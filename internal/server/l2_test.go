package server

import (
	"bytes"
	"context"
	"testing"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/geom"
	"kyrix/internal/sqldb"
)

// l2Options is a server config with a small L1 and the persistent tile
// store enabled at dir.
func l2Options(dir string) Options {
	return Options{
		Cache: CacheOptions{
			L1: L1CacheOptions{Bytes: 8 << 20},
			L2: L2CacheOptions{
				Path:          dir,
				MaxBytes:      64 << 20,
				FlushInterval: 2 * time.Millisecond,
			},
		},
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    []float64{512},
			MappingIndex: sqldb.IndexBTree,
		},
	}
}

// TestL2WarmRestart is the tier's reason to exist: a server that dies
// and comes back over the same L2 directory serves its working set
// from disk — zero database queries — with byte-identical payloads.
func TestL2WarmRestart(t *testing.T) {
	dir := t.TempDir()
	db, ca := newPointsApp(t, 500, 4096, 2048)

	srv1, err := New(db, ca, l2Options(dir))
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := srv1.Layer("main", 0)
	tiles := []geom.TileID{{Col: 0, Row: 0}, {Col: 1, Row: 0}, {Col: 2, Row: 1}}
	want := make(map[geom.TileID][]byte)
	for _, tid := range tiles {
		payload, err := srv1.serveTile(context.Background(), pl, "spatial", CodecJSON, 512, tid, false)
		if err != nil {
			t.Fatal(err)
		}
		want[tid] = payload
	}
	if got := srv1.Stats.DBQueries.Load(); got != int64(len(tiles)) {
		t.Fatalf("cold serve ran %d db queries, want %d", got, len(tiles))
	}
	// Close drains the write-behind queue to disk.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the same dataset (workload seeds are
	// deterministic) and the same L2 directory.
	db2, ca2 := newPointsApp(t, 500, 4096, 2048)
	srv2, err := New(db2, ca2, l2Options(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	pl2, _ := srv2.Layer("main", 0)
	for _, tid := range tiles {
		payload, err := srv2.serveTile(context.Background(), pl2, "spatial", CodecJSON, 512, tid, false)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, want[tid]) {
			t.Fatalf("tile %v: restarted payload differs from original", tid)
		}
	}
	if got := srv2.Stats.DBQueries.Load(); got != 0 {
		t.Fatalf("warm restart ran %d db queries, want 0 (L2 should answer)", got)
	}
	snap := srv2.Snapshot()
	if snap.Cache.L2 == nil || snap.Cache.L2.Hits != int64(len(tiles)) {
		t.Fatalf("L2 stats after warm serve: %+v", snap.Cache.L2)
	}
	// And the L2 hits were promoted into L1: a re-serve touches
	// neither disk nor database.
	l2HitsBefore := srv2.l2.Stats.Hits.Load()
	for _, tid := range tiles {
		if _, err := srv2.serveTile(context.Background(), pl2, "spatial", CodecJSON, 512, tid, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv2.l2.Stats.Hits.Load(); got != l2HitsBefore {
		t.Fatalf("re-serve read L2 again (%d extra hits), L1 promotion failed", got-l2HitsBefore)
	}
}

// TestL2UpdateInvalidates: /update's generation bump must make every
// persisted payload invisible — including across a restart — so the
// tier can never serve pre-update rows.
func TestL2UpdateInvalidates(t *testing.T) {
	dir := t.TempDir()
	db, ca := newPointsApp(t, 200, 4096, 2048)

	srv, err := New(db, ca, l2Options(dir))
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := srv.Layer("main", 0)
	tid := geom.TileID{Col: 0, Row: 0}
	if _, err := srv.serveTile(context.Background(), pl, "spatial", CodecJSON, 512, tid, false); err != nil {
		t.Fatal(err)
	}
	if err := srv.l2.Flush(); err != nil {
		t.Fatal(err)
	}
	genBefore := srv.l2.Generation()
	if _, err := srv.execUpdate("DELETE FROM points WHERE id >= 0", nil); err != nil {
		t.Fatal(err)
	}
	if got := srv.l2.Generation(); got != genBefore+1 {
		t.Fatalf("update bumped L2 generation %d -> %d, want +1", genBefore, got)
	}
	dbqBefore := srv.Stats.DBQueries.Load()
	post, err := srv.serveTile(context.Background(), pl, "spatial", CodecJSON, 512, tid, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats.DBQueries.Load(); got != dbqBefore+1 {
		t.Fatalf("post-update serve must re-query the database (queries %d -> %d)", dbqBefore, got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// The invalidation is durable: a restarted server over the same
	// directory still refuses the pre-update record. The fresh DB gets
	// the same DELETE so its rows match the post-update state.
	db2, ca2 := newPointsApp(t, 200, 4096, 2048)
	if _, err := db2.Exec("DELETE FROM points WHERE id >= 0"); err != nil {
		t.Fatal(err)
	}
	srv2, err := New(db2, ca2, l2Options(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	pl2, _ := srv2.Layer("main", 0)
	dbqBefore = srv2.Stats.DBQueries.Load()
	payload, err := srv2.serveTile(context.Background(), pl2, "spatial", CodecJSON, 512, tid, false)
	if err != nil {
		t.Fatal(err)
	}
	// The post-update fill was persisted under the new generation, so
	// it may legitimately be served from L2 — but it must be the
	// post-update payload, never the pre-update one.
	if !bytes.Equal(payload, post) {
		t.Fatal("restarted server served a pre-update payload from L2")
	}
	_ = dbqBefore
}

// TestL2StaleFillDropped: a query that raced an update must not
// persist its pre-update payload. The queryHook holds the query open
// while an update bumps the generation underneath it.
func TestL2StaleFillDropped(t *testing.T) {
	dir := t.TempDir()
	db, ca := newPointsApp(t, 200, 4096, 2048)
	opts := l2Options(dir)
	opts.DisableCoalescing = true // hook runs inline, keep the flow simple
	srv, err := New(db, ca, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pl, _ := srv.Layer("main", 0)
	tid := geom.TileID{Col: 0, Row: 0}

	fired := false
	srv.queryHook = func() {
		if fired {
			return
		}
		fired = true
		if _, err := srv.execUpdate("DELETE FROM points WHERE id < 0", nil); err != nil {
			t.Error(err)
		}
	}
	if _, err := srv.serveTile(context.Background(), pl, "spatial", CodecJSON, 512, tid, false); err != nil {
		t.Fatal(err)
	}
	srv.queryHook = nil
	if err := srv.l2.Flush(); err != nil {
		t.Fatal(err)
	}
	// The racing fill was enqueued with the pre-update generation and
	// must have been dropped at flush time: nothing resident in L2.
	if got := srv.l2.Len(); got != 0 {
		t.Fatalf("stale fill persisted: %d L2 keys", got)
	}
	if srv.l2.Stats.DroppedStale.Load() == 0 {
		t.Fatal("expected a stale-generation drop")
	}
}

// TestL2ClusterPeerFillAndEpoch: in a cluster, a non-owner's peer fill
// lands in its local L2 (so the payload survives that node's restart
// without a network hop), and observing a newer cluster epoch bumps the
// observer's L2 generation — the remote form of /update invalidation.
func TestL2ClusterPeerFillAndEpoch(t *testing.T) {
	dirs := make(map[int]string)
	nodes := newTestCluster(t, 2, 300, func(i int, o *Options) {
		dirs[i] = t.TempDir()
		o.Cluster.HotReplicate = -1 // keep fills out of L1 so L2 answers
		o.Cache.L2 = L2CacheOptions{
			Path:          dirs[i],
			MaxBytes:      64 << 20,
			FlushInterval: 2 * time.Millisecond,
		}
	})
	owner, other, tid := ownerAndOther(t, nodes)
	key := tileKeyFor(CodecJSON, "spatial", 512, tid)

	// Non-owner miss: peer fill from the owner, persisted locally.
	want := getTile(t, other.url, tid)
	if err := other.srv.l2.Flush(); err != nil {
		t.Fatal(err)
	}
	got, ok := other.srv.l2.Get(key)
	if !ok {
		t.Fatal("peer fill did not land in the non-owner's L2")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("L2 holds a payload that differs from the served tile")
	}

	// Re-request: with hot-replication off the payload is not in L1, so
	// the local persistent tier must answer before any peer exchange.
	fetchesBefore := other.srv.cluster.Stats.PeerFills.Load()
	l2HitsBefore := other.srv.l2.Stats.Hits.Load()
	if again := getTile(t, other.url, tid); !bytes.Equal(again, want) {
		t.Fatal("re-served payload differs")
	}
	if got := other.srv.cluster.Stats.PeerFills.Load(); got != fetchesBefore {
		t.Fatalf("re-request went to the peer (%d new fills), L2 should have answered", got-fetchesBefore)
	}
	if other.srv.l2.Stats.Hits.Load() == l2HitsBefore {
		t.Fatal("re-request did not read the persistent tier")
	}

	// An update at the owner gossips a newer epoch; the observer must
	// bump its L2 generation so the stale record becomes invisible.
	otherL2Gen := other.srv.l2.Generation()
	postUpdate(t, owner.url, "DELETE FROM points WHERE id >= 0")
	// The epoch travels on the next peer exchange — requesting the same
	// tile again would be answered from L2 without one, so fetch a
	// different owner-owned tile that is not yet resident here.
	var tid2 geom.TileID
	found := false
	for col := 0; col < 8 && !found; col++ {
		for row := 0; row < 4 && !found; row++ {
			cand := geom.TileID{Col: col, Row: row}
			if cand == tid {
				continue
			}
			if other.srv.cluster.Owner(tileKeyFor(CodecJSON, "spatial", 512, cand)) == owner.url {
				tid2, found = cand, true
			}
		}
	}
	if !found {
		t.Fatal("no second owner-owned tile")
	}
	getTile(t, other.url, tid2)
	deadline := time.Now().Add(10 * time.Second)
	for other.srv.l2.Generation() == otherL2Gen {
		if time.Now().After(deadline) {
			t.Fatal("epoch adoption did not bump the observer's L2 generation")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := other.srv.l2.Get(key); ok {
		t.Fatal("pre-epoch payload still visible in L2 after adoption")
	}
}

// TestCacheOptionsAliasCompat is the API-migration contract: old flat
// call sites configure exactly what the nested form does, and an
// explicitly set nested field wins over its deprecated alias.
func TestCacheOptionsAliasCompat(t *testing.T) {
	flat := Options{
		CacheBytes:          4 << 20,
		CacheShards:         8,
		CacheAdmission:      "lfu",
		CacheSketchCounters: 1 << 12,
		CacheDoorkeeper:     true,
	}
	nested := Options{
		Cache: CacheOptions{L1: L1CacheOptions{
			Bytes:          4 << 20,
			Shards:         8,
			Admission:      "lfu",
			SketchCounters: 1 << 12,
			Doorkeeper:     true,
		}},
	}
	if flat.resolvedCache() != nested.resolvedCache() {
		t.Fatalf("flat aliases resolve to %+v, nested to %+v",
			flat.resolvedCache(), nested.resolvedCache())
	}

	// Per-field precedence: nested wins where set, alias fills the rest.
	mixed := Options{
		CacheBytes:     1 << 20,
		CacheShards:    4,
		CacheAdmission: "off",
		Cache: CacheOptions{L1: L1CacheOptions{
			Bytes:     2 << 20, // explicit nested beats the alias
			Admission: "lfu",
		}},
	}
	got := mixed.resolvedCache()
	if got.L1.Bytes != 2<<20 || got.L1.Admission != "lfu" {
		t.Fatalf("nested fields lost to aliases: %+v", got.L1)
	}
	if got.L1.Shards != 4 {
		t.Fatalf("unset nested field did not fall back to alias: %+v", got.L1)
	}

	// And a flat-configured server actually serves with those knobs: a
	// behavioral check, not just a resolver check.
	db, ca := newPointsApp(t, 100, 4096, 2048)
	srv, err := New(db, ca, Options{
		CacheBytes:  4 << 20, // >= 1 MiB per shard, so Shards=2 sticks
		CacheShards: 2,
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    []float64{512},
			MappingIndex: sqldb.IndexBTree,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.BackendCache().ShardCount(); got != 2 {
		t.Fatalf("flat CacheShards=2 produced %d shards", got)
	}
	pl, _ := srv.Layer("main", 0)
	if _, err := srv.serveTile(context.Background(), pl, "spatial", CodecJSON, 512, geom.TileID{}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.serveTile(context.Background(), pl, "spatial", CodecJSON, 512, geom.TileID{}, false); err != nil {
		t.Fatal(err)
	}
	if srv.Stats.CacheHits.Load() == 0 {
		t.Fatal("flat CacheBytes did not enable the cache")
	}
}
