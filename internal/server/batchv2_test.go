package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// --- frame codec, in isolation ---

func TestBatchV2FrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Index: 0, Kind: FrameTile, Status: FrameOK, Payload: []byte("tile payload")},
		{Index: 2, Kind: FrameDBox, Status: FrameBadRequest, Payload: []byte("bad box")},
		{Index: 1, Kind: FrameDBox, Status: FrameOK, Payload: nil},
		{Index: 3, Kind: FrameTile, Status: FrameInternal, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var buf bytes.Buffer
	if err := WriteBatchHeader(&buf, len(frames)); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}

	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	n, err := ReadBatchHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frames) {
		t.Fatalf("frame count = %d, want %d", n, len(frames))
	}
	for i, want := range frames {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Index != want.Index || got.Kind != want.Kind || got.Status != want.Status {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d payload differs", i)
		}
	}
	// The stream is exactly consumed: one more read is a clean EOF.
	if _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("read past end = %v, want io.EOF", err)
	}
}

func TestBatchV2TruncatedAndCorrupt(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteBatchHeader(&buf, 2)
	_ = WriteFrame(&buf, Frame{Index: 0, Kind: FrameTile, Status: FrameOK, Payload: []byte("0123456789")})
	_ = WriteFrame(&buf, Frame{Index: 1, Kind: FrameDBox, Status: FrameOK, Payload: []byte("abcdef")})
	whole := buf.Bytes()

	// Truncating the stream at every possible boundary must yield an
	// error (or a clean EOF strictly before both frames arrived) —
	// never a bogus success.
	for cut := 0; cut < len(whole); cut++ {
		br := bufio.NewReader(bytes.NewReader(whole[:cut]))
		n, err := ReadBatchHeader(br)
		if err != nil {
			continue // truncated inside the header: detected
		}
		got := 0
		for got < n {
			if _, err := ReadFrame(br); err != nil {
				break
			}
			got++
		}
		if got >= n {
			t.Fatalf("cut at %d bytes still decoded %d/%d frames", cut, got, n)
		}
	}

	// Corrupt magic.
	bad := append([]byte{}, whole...)
	bad[0] = 'X'
	if _, err := ReadBatchHeader(bufio.NewReader(bytes.NewReader(bad))); err == nil {
		t.Fatal("bad magic must fail")
	}
	// Unknown version.
	bad = append([]byte{}, whole...)
	bad[4] = 9
	if _, err := ReadBatchHeader(bufio.NewReader(bytes.NewReader(bad))); err == nil {
		t.Fatal("unknown version must fail")
	}
	// Unknown frame kind and status.
	var kbuf bytes.Buffer
	_ = WriteBatchHeader(&kbuf, 1)
	_ = WriteFrame(&kbuf, Frame{Index: 0, Kind: FrameKind(7), Status: FrameOK})
	br := bufio.NewReader(bytes.NewReader(kbuf.Bytes()))
	if _, err := ReadBatchHeader(br); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(br); err == nil {
		t.Fatal("unknown frame kind must fail")
	}
	var sbuf bytes.Buffer
	_ = WriteBatchHeader(&sbuf, 1)
	_ = WriteFrame(&sbuf, Frame{Index: 0, Kind: FrameTile, Status: FrameStatus(9)})
	br = bufio.NewReader(bytes.NewReader(sbuf.Bytes()))
	if _, err := ReadBatchHeader(br); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(br); err == nil {
		t.Fatal("unknown frame status must fail")
	}
	// A corrupt (absurd) payload length must error out instead of
	// attempting the allocation.
	huge := []byte{0, byte(FrameTile), byte(FrameOK), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Fatal("absurd payload length must fail")
	}
}

// --- the HTTP endpoint ---

// postBatchV2Raw posts a v2 request and fully decodes the framed
// stream, returning frames indexed by item position.
func postBatchV2Raw(t *testing.T, url string, req BatchRequestV2) ([]Frame, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch v2: %s: %s", resp.Status, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != BatchV2ContentType {
		t.Fatalf("content type = %q, want %q", ct, BatchV2ContentType)
	}
	br := bufio.NewReader(resp.Body)
	n, err := ReadBatchHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(req.Items) {
		t.Fatalf("announced %d frames for %d items", n, len(req.Items))
	}
	out := make([]Frame, n)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		f, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Index >= n || seen[f.Index] {
			t.Fatalf("bogus frame index %d", f.Index)
		}
		seen[f.Index] = true
		out[f.Index] = f
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("stream should end after %d frames, got %v", n, err)
	}
	return out, resp
}

func TestBatchV2MixedTileDBox(t *testing.T) {
	srv, hs := newPointsServer(t, 2000, 4096, 2048)

	get := func(path string) []byte {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s: %s", path, resp.Status, data)
		}
		return data
	}

	req := BatchRequestV2{
		V: BatchV2Version, Canvas: "main", Codec: CodecJSON,
		Items: []BatchItem{
			{Kind: "tile", Layer: 0, Size: 512, Col: 1, Row: 1},
			{Kind: "dbox", Layer: 0, MinX: 100, MinY: 100, MaxX: 900, MaxY: 700},
			{Kind: "tile", Layer: 0, Size: 512, Col: -3, Row: 0},                 // per-frame error
			{Kind: "dbox", Layer: 0, MinX: 500, MinY: 500, MaxX: 100, MaxY: 100}, // invalid box
			{Kind: "tile", Layer: 9, Size: 512, Col: 0, Row: 0},                  // no such layer
			{Kind: "tile", Layer: 0, Size: 512, Col: 2, Row: 0},
		},
	}
	frames, _ := postBatchV2Raw(t, hs.URL, req)

	// Good frames carry exactly the bytes the single-request
	// endpoints would have returned — no base64, no envelope.
	if frames[0].Status != FrameOK || frames[0].Kind != FrameTile {
		t.Fatalf("frame 0 = %+v", frames[0])
	}
	if want := get("/tile?canvas=main&layer=0&size=512&col=1&row=1"); !bytes.Equal(frames[0].Payload, want) {
		t.Fatal("tile frame payload differs from GET /tile")
	}
	if frames[1].Status != FrameOK || frames[1].Kind != FrameDBox {
		t.Fatalf("frame 1 = %+v", frames[1])
	}
	if want := get("/dbox?canvas=main&layer=0&minx=100&miny=100&maxx=900&maxy=700"); !bytes.Equal(frames[1].Payload, want) {
		t.Fatal("dbox frame payload differs from GET /dbox")
	}
	if frames[5].Status != FrameOK {
		t.Fatalf("frame 5 = %+v", frames[5])
	}

	// Failures are isolated per frame, siblings unaffected.
	for _, idx := range []int{2, 3, 4} {
		if frames[idx].Status != FrameBadRequest {
			t.Fatalf("frame %d status = %d, want bad request", idx, frames[idx].Status)
		}
		if len(frames[idx].Payload) == 0 {
			t.Fatalf("frame %d error payload empty", idx)
		}
	}

	// Stats: one batch, tile/dbox items counted by kind.
	if got := srv.Stats.BatchRequests.Load(); got != 1 {
		t.Fatalf("BatchRequests = %d", got)
	}
	if got := srv.Stats.BoxRequests.Load(); got != 3 { // 2 batch dboxes + 1 GET /dbox
		t.Fatalf("BoxRequests = %d", got)
	}
}

func TestBatchV2Validation(t *testing.T) {
	_, hs := newPointsServer(t, 200, 4096, 2048)
	post := func(req BatchRequestV2) int {
		body, _ := json.Marshal(req)
		resp, err := http.Post(hs.URL+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(BatchRequestV2{V: 2, Canvas: "main"}); code != http.StatusBadRequest {
		t.Fatalf("empty items = %d", code)
	}
	big := BatchRequestV2{V: 2, Canvas: "main"}
	for i := 0; i <= MaxBatchItems; i++ {
		big.Items = append(big.Items, BatchItem{Kind: "tile", Size: 512, Col: i})
	}
	if code := post(big); code != http.StatusBadRequest {
		t.Fatalf("oversize batch = %d", code)
	}
	if code := post(BatchRequestV2{V: 2, Canvas: "main", Codec: "xml",
		Items: []BatchItem{{Kind: "tile", Size: 512}}}); code != http.StatusBadRequest {
		t.Fatalf("unknown codec = %d", code)
	}
	// Unknown protocol versions are rejected at dispatch.
	body := []byte(`{"v":4,"canvas":"main","items":[{"kind":"tile","size":512}]}`)
	resp, err := http.Post(hs.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("v4 request = %d", resp.StatusCode)
	}
	// An unknown item kind is a per-frame error, not a request error.
	frames, _ := postBatchV2Raw(t, hs.URL, BatchRequestV2{
		V: 2, Canvas: "main",
		Items: []BatchItem{{Kind: "polygon", Layer: 0}},
	})
	if frames[0].Status != FrameBadRequest {
		t.Fatalf("unknown kind frame = %+v", frames[0])
	}
}

// TestBatchV2CoalescesWithSingles verifies batch items ride the same
// cache as single requests: a tile served via GET /tile is a backend
// cache hit when re-requested inside a v2 batch.
func TestBatchV2CoalescesWithSingles(t *testing.T) {
	srv, hs := newPointsServer(t, 1000, 4096, 2048)
	resp, err := http.Get(hs.URL + "/tile?canvas=main&layer=0&size=512&col=1&row=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	dbqBefore := srv.Stats.DBQueries.Load()
	frames, _ := postBatchV2Raw(t, hs.URL, BatchRequestV2{
		V: 2, Canvas: "main",
		Items: []BatchItem{{Kind: "tile", Layer: 0, Size: 512, Col: 1, Row: 1}},
	})
	if frames[0].Status != FrameOK {
		t.Fatalf("frame = %+v", frames[0])
	}
	if got := srv.Stats.DBQueries.Load() - dbqBefore; got != 0 {
		t.Fatalf("batched re-request ran %d queries, want cache hit", got)
	}
}
