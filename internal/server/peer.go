package server

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"kyrix/internal/cluster"
	"kyrix/internal/obs"
	"kyrix/internal/storage"
)

// Clustered serving: this file is the server half of internal/cluster.
// POST /peer is the owner-side fill endpoint (a peer's cache miss
// lands here and is served through the normal cache + singleflight
// path), and peerQuery is the requester-side routing for misses on
// keys another node owns.

// Cluster exposes this node's cluster membership (nil when serving
// standalone); experiment harnesses read its stats.
func (s *Server) Cluster() *cluster.Node { return s.cluster }

// handlePeer serves one fill request from another cluster node. The
// item is served strictly locally (localOnly) — if the requester's
// ring disagrees with ours about ownership, the worst case is a query
// on the wrong node, never a forwarding loop. Epochs gossip both ways:
// the request carries the requester's, the response header ours.
func (s *Server) handlePeer(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		http.Error(w, "not a cluster node", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var fr cluster.FillRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&fr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.cluster.Observe(fr.Epochs)
	s.cluster.Stats.PeerServes.Add(1)

	codec := Codec(fr.Codec)
	if codec == "" {
		codec = CodecJSON
	}
	it := BatchItem{
		Kind: fr.Kind, Layer: fr.Layer, Size: fr.Size, Design: fr.Design,
		Col: fr.Col, Row: fr.Row,
		MinX: fr.MinX, MinY: fr.MinY, MaxX: fr.MaxX, MaxY: fr.MaxY,
	}
	// The requester's trace header (injected by the transport) makes
	// this span part of the REQUESTER's trace: same trace ID, parented
	// under its peer.fetch span. The finished subtree rides back on the
	// response's spans header, where fetchOnce grafts it — one stitched
	// trace covers the whole cross-node fill.
	ctx, sp := s.startRequestSpan(r, "peer.serve")
	sp.Attr("kind", fr.Kind)
	srvStart := time.Now()
	payload, err := s.serveItem(ctx, fr.Canvas, it, codec, false, true)
	s.obs.stagePeerSrv.Observe(time.Since(srvStart))
	sp.End()
	if v := obs.EncodeSpansHeader(sp.Data()); v != "" {
		w.Header().Set(obs.SpansHeader, v)
	}
	badReq := err != nil && httpStatusOf(err) == http.StatusBadRequest
	_ = cluster.WritePeerResponse(w, s.cluster.EpochVec(), cluster.FrameKindOf(fr.Kind), payload, err, badReq)
}

// peerQuery fills a locally missed key this node does not own: forward
// to the owner, falling back to a local database query when the peer
// is unreachable — a peer problem degrades the cluster to independent
// nodes, never to an outage. Concurrent identical misses coalesce onto
// one peer exchange (and, at the owner, onto one generation-scoped
// flight), so one database query serves the whole cluster per key per
// generation.
//
// Peer-filled payloads are admitted into the local cache only when the
// key's sketch frequency has crossed the HotReplicate threshold —
// cluster-hot keys become locally resident everywhere instead of
// bottlenecking their owner, while the long tail stays owner-only and
// the cluster's aggregate cache capacity scales with node count. With
// admission off (no sketch) every fill replicates, the plain
// groupcache behavior.
func (s *Server) peerQuery(ctx context.Context, key string, fr *cluster.FillRequest, sql string, args []storage.Value, codec Codec, memoize bool) ([]byte, error) {
	gen := s.cacheGen.Load()
	l2gen := s.l2Gen()
	owner := s.cluster.Owner(key)
	fill := func() (any, error) {
		// Double-check like cachedQuery: a previous flight (or a hot
		// replication) may have populated the cache while queuing.
		if data, ok := s.bcache.Peek(key); ok {
			s.Stats.CacheHits.Add(1)
			return data.([]byte), nil
		}
		// The local persistent tier answers before the peer hop: a
		// payload this node once fetched (or served) survives in L2
		// across restarts, and a checksum-verified local disk read
		// beats a network exchange. L1 admission for non-owned keys
		// stays behind the hot-replicate gate, same as a peer fill.
		if payload, ok := s.l2ReadTraced(ctx, key); ok {
			if hr := s.cluster.HotReplicate(); hr >= 0 {
				if f := s.bcache.EstimateFreq(key); f < 0 || f >= hr {
					s.putUnlessStale(gen, key, payload)
				}
			}
			return payload, nil
		}
		fctx, fsp := s.tracer().Start(ctx, "peer.fetch")
		fsp.Attr("owner", owner)
		fetchStart := time.Now()
		payload, err := s.cluster.FetchContext(fctx, owner, fr)
		s.obs.stagePeer.Observe(time.Since(fetchStart))
		if err != nil {
			fsp.Attr("err", err.Error())
		}
		fsp.End()
		if err == nil {
			// Peer fills populate L2 unconditionally: the hot-replicate
			// gate protects L1's scarce memory, while the persistent
			// tier exists precisely to keep refetchable bytes off the
			// network after a restart.
			s.l2Fill(l2gen, key, payload)
			if hr := s.cluster.HotReplicate(); hr >= 0 {
				if f := s.bcache.EstimateFreq(key); f < 0 || f >= hr {
					s.putUnlessStale(gen, key, payload)
					// Count replicas actually resident after the Put —
					// the generation re-check or the cache's own
					// admission gate may have declined the store.
					if s.bcache.Contains(key) {
						s.cluster.Stats.HotReplicas.Add(1)
					}
				}
			}
			return payload, nil
		}
		s.cluster.Stats.LocalFallbacks.Add(1)
		payload, qerr := s.runQuery(ctx, sql, args, codec, memoize)
		if qerr != nil {
			return nil, qerr
		}
		s.putUnlessStale(gen, key, payload)
		s.l2Fill(l2gen, key, payload)
		return payload, nil
	}
	if s.opts.DisableCoalescing {
		v, err := fill()
		if err != nil {
			return nil, err
		}
		return v.([]byte), nil
	}
	v, err, dup := s.flight.Do(flightKey(gen, key), fill)
	if err != nil {
		return nil, err
	}
	if dup {
		s.Stats.CoalescedHits.Add(1)
	}
	return v.([]byte), nil
}

// ownsDBox reports whether this node serves the item's dynamic box
// itself (always true when standalone). The v3 batch path uses it to
// decide whether delta encoding is safe: a non-owned item's payload
// may come from a peer at a different cluster epoch, and the delta
// diff is id-based and content-blind — cross-epoch deltas could skip
// changed rows, so non-owned items always ship full frames.
func (s *Server) ownsDBox(canvas string, it BatchItem, codec Codec) bool {
	if s.cluster == nil {
		return true
	}
	pl, ok := s.Layer(canvas, it.Layer)
	if !ok || pl.Table == "" {
		return true // the error path is local either way
	}
	box := it.Box()
	if !box.Valid() {
		return true
	}
	return s.cluster.Owns(s.boxCacheKey(pl, codec, box))
}
