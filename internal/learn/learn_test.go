package learn

import (
	"math"
	"math/rand"
	"testing"

	"kyrix/internal/geom"
	"kyrix/internal/storage"
)

var schema = storage.Schema{
	{Name: "id", Type: storage.TInt64},
	{Name: "lon", Type: storage.TFloat64},
	{Name: "lat", Type: storage.TFloat64},
	{Name: "name", Type: storage.TString},
}

func exampleAt(id int64, lon, lat float64, pos geom.Point) Example {
	return Example{
		Row: storage.Row{storage.I64(id), storage.F64(lon), storage.F64(lat), storage.Str("x")},
		Pos: pos,
	}
}

func TestFitExactScaling(t *testing.T) {
	// Position = (lon*10, lat*5): a pure separable scaling.
	var examples []Example
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		lon, lat := rng.Float64()*100, rng.Float64()*50
		examples = append(examples, exampleAt(int64(i), lon, lat,
			geom.Point{X: lon * 10, Y: lat * 5}))
	}
	fit, err := FitPlacement(schema, examples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.XCol != "lon" || fit.YCol != "lat" {
		t.Fatalf("columns = %s/%s", fit.XCol, fit.YCol)
	}
	if math.Abs(fit.XScale-10) > 1e-6 || math.Abs(fit.YScale-5) > 1e-6 {
		t.Fatalf("scales = %g/%g", fit.XScale, fit.YScale)
	}
	if fit.RMSE > 1e-6 {
		t.Fatalf("rmse = %g", fit.RMSE)
	}
	if !fit.Separable(1e-6) {
		t.Fatal("pure scaling must be separable")
	}
	p := fit.Placement(2)
	if p.XCol != "lon" || p.Radius != 2 || !p.Separable() {
		t.Fatalf("placement = %+v", p)
	}
}

func TestFitWithOffset(t *testing.T) {
	// Position = lon*2 + 500: scaling plus offset — learnable but not
	// separable in the spec's pure-scaling sense.
	var examples []Example
	for i := 0; i < 5; i++ {
		lon := float64(i * 10)
		examples = append(examples, exampleAt(int64(i), lon, float64(i),
			geom.Point{X: lon*2 + 500, Y: float64(i) * 3}))
	}
	fit, err := FitPlacement(schema, examples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.XOffset-500) > 1e-6 {
		t.Fatalf("xoffset = %g", fit.XOffset)
	}
	if fit.Separable(1) {
		t.Fatal("offset placement must not claim separability")
	}
}

func TestFitNoisyExamples(t *testing.T) {
	// Drag-and-drop is imprecise: ±3px noise must still recover the
	// right columns and approximate scales.
	rng := rand.New(rand.NewSource(9))
	var examples []Example
	for i := 0; i < 30; i++ {
		lon, lat := rng.Float64()*1000, rng.Float64()*500
		examples = append(examples, exampleAt(int64(i), lon, lat, geom.Point{
			X: lon*3 + rng.NormFloat64()*3,
			Y: lat*7 + rng.NormFloat64()*3,
		}))
	}
	fit, err := FitPlacement(schema, examples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.XCol != "lon" || fit.YCol != "lat" {
		t.Fatalf("columns = %s/%s", fit.XCol, fit.YCol)
	}
	if math.Abs(fit.XScale-3) > 0.1 || math.Abs(fit.YScale-7) > 0.1 {
		t.Fatalf("scales = %g/%g", fit.XScale, fit.YScale)
	}
	if fit.RMSE > 10 {
		t.Fatalf("rmse = %g", fit.RMSE)
	}
}

func TestFitPicksBestColumn(t *testing.T) {
	// id also varies, but lon drives x much better; the fit must pick
	// lon over id.
	rng := rand.New(rand.NewSource(5))
	var examples []Example
	for i := 0; i < 20; i++ {
		lon := rng.Float64() * 1000
		examples = append(examples, exampleAt(int64(i), lon, rng.Float64()*100,
			geom.Point{X: lon * 2, Y: rng.Float64() * 100 * 4}))
	}
	// y is noise w.r.t. lat — but lat is still its best predictor among
	// the numeric columns; we only assert the x side.
	fit, err := FitPlacement(schema, examples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.XCol != "lon" {
		t.Fatalf("xcol = %s", fit.XCol)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitPlacement(schema, nil); err == nil {
		t.Fatal("no examples must fail")
	}
	two := []Example{
		exampleAt(1, 1, 1, geom.Point{X: 1, Y: 1}),
		exampleAt(2, 2, 2, geom.Point{X: 2, Y: 2}),
	}
	if _, err := FitPlacement(schema, two); err == nil {
		t.Fatal("two examples must fail")
	}
	// Arity mismatch.
	bad := []Example{
		{Row: storage.Row{storage.I64(1)}, Pos: geom.Point{}},
		{Row: storage.Row{storage.I64(2)}, Pos: geom.Point{}},
		{Row: storage.Row{storage.I64(3)}, Pos: geom.Point{}},
	}
	if _, err := FitPlacement(schema, bad); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	// No numeric columns.
	strSchema := storage.Schema{{Name: "s", Type: storage.TString}}
	strEx := []Example{
		{Row: storage.Row{storage.Str("a")}, Pos: geom.Point{}},
		{Row: storage.Row{storage.Str("b")}, Pos: geom.Point{}},
		{Row: storage.Row{storage.Str("c")}, Pos: geom.Point{}},
	}
	if _, err := FitPlacement(strSchema, strEx); err == nil {
		t.Fatal("no numeric columns must fail")
	}
	// All candidate columns constant.
	constEx := []Example{
		exampleAt(1, 5, 5, geom.Point{X: 10, Y: 10}),
		exampleAt(1, 5, 5, geom.Point{X: 20, Y: 20}),
		exampleAt(1, 5, 5, geom.Point{X: 30, Y: 30}),
	}
	if _, err := FitPlacement(schema, constEx); err == nil {
		t.Fatal("constant columns must fail")
	}
}
