// Package learn implements the paper's "application by example" vision
// (§4): "a user can drag and drop screen objects, and Kyrix can learn
// to automatically generate the location function".
//
// Given example pairs (data row, dragged-to canvas position), FitPlacement
// tries to recover a separable placement — x = a·row[xCol] + b,
// y = c·row[yCol] + d — by least squares over every candidate column
// pair, picking the best-fitting one. When the residual is small the
// result is a spec.Placement the compiler accepts directly, and the
// fit reports which columns drive the position (the §3.2 separability
// detection).
package learn

import (
	"fmt"
	"math"

	"kyrix/internal/geom"
	"kyrix/internal/spec"
	"kyrix/internal/storage"
)

// Example is one drag-and-drop demonstration: a data row and where the
// user placed it on the canvas.
type Example struct {
	Row storage.Row
	Pos geom.Point
}

// Fit is a learned separable placement.
type Fit struct {
	XCol, YCol     string
	XScale, YScale float64
	XOffset        float64
	YOffset        float64
	// RMSE is the root-mean-square pixel error over the examples.
	RMSE float64
}

// Placement converts the fit to a spec placement when the learned
// offsets are negligible (the spec's separable form is a pure scaling;
// non-zero offsets would need a transform function, which ToTransform
// provides).
func (f *Fit) Placement(radius float64) *spec.Placement {
	return &spec.Placement{
		XCol: f.XCol, YCol: f.YCol,
		XScale: f.XScale, YScale: f.YScale,
		Radius: radius,
	}
}

// Separable reports whether the learned placement is a raw scaling
// (offsets ≈ 0), i.e. usable without precomputation per §3.2.
func (f *Fit) Separable(tol float64) bool {
	return math.Abs(f.XOffset) <= tol && math.Abs(f.YOffset) <= tol
}

// FitPlacement learns a placement from examples over a schema. It
// requires at least 3 examples and at least one numeric column, and
// returns the column pair minimizing RMSE.
func FitPlacement(schema storage.Schema, examples []Example) (*Fit, error) {
	if len(examples) < 3 {
		return nil, fmt.Errorf("learn: need at least 3 examples, got %d", len(examples))
	}
	var numeric []int
	for i, c := range schema {
		if c.Type == storage.TInt64 || c.Type == storage.TFloat64 {
			numeric = append(numeric, i)
		}
	}
	if len(numeric) == 0 {
		return nil, fmt.Errorf("learn: schema has no numeric columns")
	}
	for _, ex := range examples {
		if len(ex.Row) != len(schema) {
			return nil, fmt.Errorf("learn: example arity %d != schema arity %d", len(ex.Row), len(schema))
		}
	}

	best := (*Fit)(nil)
	for _, xc := range numeric {
		ax, bx, errX, okX := fit1D(examples, xc, func(e Example) float64 { return e.Pos.X })
		if !okX {
			continue
		}
		for _, yc := range numeric {
			ay, by, errY, okY := fit1D(examples, yc, func(e Example) float64 { return e.Pos.Y })
			if !okY {
				continue
			}
			rmse := math.Sqrt((errX + errY) / float64(len(examples)))
			if best == nil || rmse < best.RMSE {
				best = &Fit{
					XCol: schema[xc].Name, YCol: schema[yc].Name,
					XScale: ax, XOffset: bx,
					YScale: ay, YOffset: by,
					RMSE: rmse,
				}
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("learn: no column explains the example positions (all candidates degenerate)")
	}
	return best, nil
}

// fit1D solves pos ≈ a·row[col] + b by ordinary least squares and
// returns the summed squared error. ok=false when the column is
// constant across examples (no information).
func fit1D(examples []Example, col int, pos func(Example) float64) (a, b, sse float64, ok bool) {
	n := float64(len(examples))
	var sx, sy, sxx, sxy float64
	for _, e := range examples {
		x := e.Row[col].AsFloat()
		y := pos(e)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	det := n*sxx - sx*sx
	if math.Abs(det) < 1e-12 {
		return 0, 0, 0, false
	}
	a = (n*sxy - sx*sy) / det
	b = (sy - a*sx) / n
	if a == 0 {
		// A zero scale means the column doesn't drive the position.
		return 0, 0, 0, false
	}
	for _, e := range examples {
		d := pos(e) - (a*e.Row[col].AsFloat() + b)
		sse += d * d
	}
	return a, b, sse, true
}
