package kyrix

import (
	"kyrix/internal/coord"
	"kyrix/internal/geom"
	"kyrix/internal/learn"
	"kyrix/internal/prefetch"
	"kyrix/internal/render"
	"kyrix/internal/storage"
)

// Geometry re-exports: viewports and placements are expressed in these
// types throughout the API.
type (
	// Rect is an axis-aligned rectangle with inclusive edges.
	Rect = geom.Rect
	// Point is a canvas location.
	Point = geom.Point
	// TileID identifies one tile of a fixed tiling.
	TileID = geom.TileID
)

// RectXYWH builds a Rect from origin and size.
func RectXYWH(x, y, w, h float64) Rect { return geom.RectXYWH(x, y, w, h) }

// RectAround builds the square Rect of half-width r centered at p.
func RectAround(p Point, r float64) Rect { return geom.RectAround(p, r) }

// Rendering re-exports: examples draw through the software rasterizer.
type (
	// Image is a drawable raster mapped onto a canvas-space viewport.
	Image = render.Image
)

// NewImage creates a w×h pixel image showing the canvas-space view.
func NewImage(w, h int, view Rect) *Image { return render.New(w, h, view) }

// Coordinated views (§4, the MGH multi-view scenario).
type (
	// Coordinator links named views so panning one moves the others.
	Coordinator = coord.Coordinator
	// CoordMap is the affine viewport mapping of a link.
	CoordMap = coord.Map
	// View is anything with a movable viewport.
	View = coord.View
)

// NewCoordinator creates an empty view coordinator.
func NewCoordinator() *Coordinator { return coord.New() }

// IdentityMap maps viewports unchanged.
var IdentityMap = coord.Identity

// WithXOnly coordinates only the horizontal axis of a link.
func WithXOnly() coord.LinkOption { return coord.WithXOnly() }

// ClientView adapts a frontend Client to the coordinated-view
// interface.
type ClientView struct{ C *Client }

// Viewport implements View.
func (v ClientView) Viewport() Rect { return v.C.Viewport() }

// MoveTo implements View by panning (and fetching).
func (v ClientView) MoveTo(r Rect) error {
	_, err := v.C.Pan(r)
	return err
}

// Prefetching (§4).
type (
	// Prefetcher issues background dynamic-box fetches from a predictor.
	Prefetcher = prefetch.Prefetcher
	// TilePrefetcher warms predicted tiles, one batched round trip per
	// prediction (pair it with ClientOptions.BatchSize > 1).
	TilePrefetcher = prefetch.TilePrefetcher
	// Predictor forecasts the next viewport.
	Predictor = prefetch.Predictor
)

// NewMomentumPredictor extrapolates the last `window` pan deltas.
func NewMomentumPredictor(window int) Predictor { return prefetch.NewMomentum(window) }

// NewSemanticPredictor predicts by data-characteristic similarity.
func NewSemanticPredictor(field prefetch.DensityField) Predictor {
	return prefetch.NewSemantic(field)
}

// NewPrefetcher wires a predictor to a client for the given data
// layers.
func NewPrefetcher(p Predictor, c *Client, layers []int, bounds Rect) *Prefetcher {
	return prefetch.NewPrefetcher(p, c, layers, bounds)
}

// NewTilePrefetcher wires a predictor to a client's tile cache for the
// given data layers and tile size; predicted viewports are warmed
// through the backend's batch endpoint when the client batches.
func NewTilePrefetcher(p Predictor, c *Client, layers []int, tileSize float64, bounds Rect) *TilePrefetcher {
	return prefetch.NewTilePrefetcher(p, c, layers, tileSize, bounds)
}

// Placement learning (§4 "application by example").
type (
	// PlacementExample is one drag-and-drop demonstration.
	PlacementExample = learn.Example
	// PlacementFit is a learned separable placement.
	PlacementFit = learn.Fit
	// Schema describes a row layout (column names and types).
	Schema = storage.Schema
	// Column is one schema column.
	Column = storage.Column
)

// LearnPlacement recovers a separable placement from drag-and-drop
// examples over rows of the given schema.
func LearnPlacement(schema Schema, examples []PlacementExample) (*PlacementFit, error) {
	return learn.FitPlacement(schema, examples)
}
