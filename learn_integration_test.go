package kyrix_test

import (
	"testing"

	"kyrix"
	"kyrix/internal/fetch"
	"kyrix/internal/storage"
)

// TestApplicationByExample ties §4's "application by example" vision to
// the full pipeline: learn a placement from drag-and-drop examples,
// build a spec with it, and serve the application — the learned layer
// behaves identically to a hand-written one.
func TestApplicationByExample(t *testing.T) {
	// The data: sensor readings whose canvas position the user
	// demonstrates by dragging a few onto the canvas. Ground truth is
	// x = lon*8, y = lat*8 with a radius-3 marker.
	schema := kyrix.Schema{
		{Name: "id", Type: storage.TInt64},
		{Name: "lon", Type: storage.TFloat64},
		{Name: "lat", Type: storage.TFloat64},
	}
	var examples []kyrix.PlacementExample
	demo := []struct{ lon, lat float64 }{
		{10, 20}, {50, 5}, {90, 60}, {130, 90}, {33, 71},
	}
	for i, d := range demo {
		examples = append(examples, kyrix.PlacementExample{
			Row: kyrix.Row{kyrix.Int(int64(i)), kyrix.Float(d.lon), kyrix.Float(d.lat)},
			Pos: kyrix.Point{X: d.lon * 8, Y: d.lat * 8},
		})
	}
	fit, err := kyrix.LearnPlacement(schema, examples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.XCol != "lon" || fit.YCol != "lat" {
		t.Fatalf("learned columns %s/%s", fit.XCol, fit.YCol)
	}
	if !fit.Separable(1e-6) {
		t.Fatalf("pure scaling should be separable: %+v", fit)
	}

	// Build the app from the learned placement and serve it.
	db := kyrix.NewDB()
	if _, err := db.Exec("CREATE TABLE sensors (id INT, lon DOUBLE, lat DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.InsertRow("sensors", kyrix.Row{
			kyrix.Int(int64(i)),
			kyrix.Float(float64(i % 125)),
			kyrix.Float(float64(i / 5 % 100)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := kyrix.NewRegistry()
	reg.RegisterRenderer("sensors")
	app := &kyrix.App{
		Name: "learned",
		Canvases: []kyrix.Canvas{{
			ID: "c", W: 1000, H: 800,
			Transforms: []kyrix.Transform{{ID: "t", Query: "SELECT * FROM sensors",
				Columns: []kyrix.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "lon", Type: "double"}, {Name: "lat", Type: "double"},
				}}},
			Layers: []kyrix.Layer{{
				TransformID: "t",
				Placement:   fit.Placement(3), // <- the learned placement
				Renderer:    "sensors",
			}},
		}},
		InitialCanvas: "c", InitialX: 500, InitialY: 400,
		ViewportW: 300, ViewportH: 300,
	}
	inst, err := kyrix.Launch(db, app, reg, kyrix.ServerOptions{
		CacheBytes: 1 << 20,
		Precompute: fetch.Options{BuildSpatial: true},
	}, kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := inst.Client.Load(); err != nil {
		t.Fatal(err)
	}
	rows, err := inst.Client.ObjectsInViewport(0)
	if err != nil || len(rows) == 0 {
		t.Fatalf("learned layer served nothing: %v, %d", err, len(rows))
	}
	// Every served object's learned position must land in the viewport
	// (modulo the marker radius).
	vp := inst.Client.Viewport()
	for _, r := range rows {
		x, y := r[1].AsFloat()*8, r[2].AsFloat()*8
		if x < vp.MinX-3 || x > vp.MaxX+3 || y < vp.MinY-3 || y > vp.MaxY+3 {
			t.Fatalf("object at learned position (%g,%g) outside viewport %s", x, y, vp)
		}
	}
}
