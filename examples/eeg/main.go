// eeg implements the paper's §4 MGH scenario: interactive exploration
// of multi-channel sleep EEG with coordinated views — "they want three
// different views of the data, a temporal view, a spectral view and a
// composite clustering view, to be coordinated. For instance, movement
// in the temporal view should cause an appropriate change in the
// spectral view."
//
// Two canvases over the same recording — a temporal amplitude view and
// a spectral band-power view — are driven by two frontend clients whose
// viewports are linked through the view coordinator (x-axis only: the
// time axes align, the vertical encodings differ). Panning the temporal
// view drags the spectral view along.
//
// It also exercises the §4 update model: the analyst tags an artifact
// interval through the backend's update endpoint, and the tag is
// visible on the next fetch.
//
// Run with:
//
//	go run ./examples/eeg
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/color"
	"log"
	"net/http"

	"kyrix"
	"kyrix/internal/workload"
)

func main() {
	const channels = 4
	eeg := workload.EEG(channels, 300, 16, 42) // 5 minutes at 16 Hz

	// ---- load samples (temporal + spectral features per row) ----
	db := kyrix.NewDB()
	if _, err := db.Exec(`CREATE TABLE eeg (id INT, channel INT, t DOUBLE, amp DOUBLE,
		delta DOUBLE, theta DOUBLE, alpha DOUBLE, beta DOUBLE, tag TEXT)`); err != nil {
		log.Fatal(err)
	}
	for _, s := range eeg.Samples {
		err := db.InsertRow("eeg", kyrix.Row{
			kyrix.Int(s.ID), kyrix.Int(s.Channel), kyrix.Float(s.T), kyrix.Float(s.Amp),
			kyrix.Float(s.Delta), kyrix.Float(s.Theta), kyrix.Float(s.Alpha), kyrix.Float(s.Beta),
			kyrix.Text(""),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	cols := []kyrix.ColumnSpec{
		{Name: "id", Type: "int"}, {Name: "channel", Type: "int"},
		{Name: "t", Type: "double"}, {Name: "amp", Type: "double"},
		{Name: "delta", Type: "double"}, {Name: "theta", Type: "double"},
		{Name: "alpha", Type: "double"}, {Name: "beta", Type: "double"},
		{Name: "tag", Type: "text"},
	}

	reg := kyrix.NewRegistry()
	reg.RegisterRenderer("temporalRendering")
	reg.RegisterRenderer("spectralRendering")
	// Temporal placement: x = t*PxPerSec; y = channel band center
	// displaced by amplitude. Depends on two attributes -> non-separable.
	pxPerSec, bandH := eeg.PxPerSec, eeg.BandHeight
	reg.RegisterPlacement("temporalPlacement", func(row kyrix.Row) kyrix.Rect {
		x := row[2].AsFloat() * pxPerSec
		y := row[1].AsFloat()*bandH + bandH/2 - row[3].AsFloat()
		return kyrix.RectAround(kyrix.Point{X: x, Y: y}, 1)
	})
	// Spectral placement: same time axis; y encodes the dominant band
	// (delta/theta/alpha/beta stacked per channel).
	reg.RegisterPlacement("spectralPlacement", func(row kyrix.Row) kyrix.Rect {
		x := row[2].AsFloat() * pxPerSec
		band, power := 0, row[4].AsFloat()
		for i, p := range []float64{row[5].AsFloat(), row[6].AsFloat(), row[7].AsFloat()} {
			if p > power {
				band, power = i+1, p
			}
		}
		y := row[1].AsFloat()*bandH + float64(band)*bandH/4 + bandH/8
		return kyrix.RectAround(kyrix.Point{X: x, Y: y}, 1)
	})

	app := &kyrix.App{
		Name: "mgh-eeg",
		Canvases: []kyrix.Canvas{
			{
				ID: "temporal", W: eeg.TemporalW, H: eeg.TemporalH,
				Transforms: []kyrix.Transform{{ID: "eegT", Query: "SELECT * FROM eeg", Columns: cols}},
				Layers: []kyrix.Layer{{
					TransformID: "eegT",
					Placement:   &kyrix.Placement{Func: "temporalPlacement"},
					Renderer:    "temporalRendering",
				}},
			},
			{
				ID: "spectral", W: eeg.TemporalW, H: eeg.TemporalH,
				Transforms: []kyrix.Transform{{ID: "eegS", Query: "SELECT * FROM eeg", Columns: cols}},
				Layers: []kyrix.Layer{{
					TransformID: "eegS",
					Placement:   &kyrix.Placement{Func: "spectralPlacement"},
					Renderer:    "spectralRendering",
				}},
			},
		},
		Jumps: []kyrix.Jump{{
			From: "temporal", To: "spectral", Type: kyrix.SemanticZoom,
		}},
		InitialCanvas: "temporal", InitialX: 300, InitialY: eeg.TemporalH / 2,
		ViewportW: 600, ViewportH: eeg.TemporalH,
	}

	inst, err := kyrix.Launch(db, app, reg, kyrix.DefaultServerOptions(), kyrix.DefaultClientOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	// A second frontend shows the spectral canvas ("multiple canvases
	// on the screen simultaneously"): it connects to the same backend
	// and jumps to the spectral view once.
	ca, err := kyrix.Compile(app, reg)
	if err != nil {
		log.Fatal(err)
	}
	spectralClient, err := kyrix.NewClient(inst.BaseURL, ca, kyrix.DefaultClientOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := spectralClient.Jump(0, nil); err != nil {
		log.Fatal(err)
	}

	if _, err := inst.Client.Load(); err != nil {
		log.Fatal(err)
	}

	// ---- coordinate the two views on the shared time axis ----
	co := kyrix.NewCoordinator()
	must(co.AddView("temporal", kyrix.ClientView{C: inst.Client}))
	must(co.AddView("spectral", kyrix.ClientView{C: spectralClient}))
	must(co.LinkBidirectional("temporal", "spectral", kyrix.IdentityMap, kyrix.WithXOnly()))

	fmt.Printf("temporal viewport: %s\n", inst.Client.Viewport())
	fmt.Printf("spectral viewport: %s\n", spectralClient.Viewport())

	// Pan the temporal view 30 seconds forward; the spectral view
	// follows automatically.
	target := inst.Client.Viewport().Translate(30*pxPerSec, 0)
	if err := co.Move("temporal", target); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after panning temporal +30s:\n")
	fmt.Printf("  temporal viewport: %s\n", inst.Client.Viewport())
	fmt.Printf("  spectral viewport: %s (coordinated)\n", spectralClient.Viewport())
	if spectralClient.Viewport().MinX != inst.Client.Viewport().MinX {
		log.Fatal("coordination failed: time axes diverged")
	}

	// ---- the §4 update model: tag an artifact interval ----
	// The temporal layer is materialized (non-separable placement), so
	// an edit that should be visible in the view targets the layer's
	// physical table, published in the layer metadata.
	layerTable := inst.Client.Canvas().Layers[0].Table
	update := map[string]any{
		"sql": fmt.Sprintf(
			"UPDATE %s SET tag = 'artifact' WHERE t >= 45 AND t < 50 AND channel = 2", layerTable),
	}
	body, _ := json.Marshal(update)
	resp, err := http.Post(inst.BaseURL+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var out map[string]int64
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	fmt.Printf("tagged %d samples as artifact via /update\n", out["affected"])

	// Refetch: tags are visible to the next viewport load.
	if err := co.Move("temporal", kyrix.RectXYWH(44*pxPerSec, 0, 600, eeg.TemporalH)); err != nil {
		log.Fatal(err)
	}
	rows, err := inst.Client.ObjectsInViewport(0)
	if err != nil {
		log.Fatal(err)
	}
	tagged := 0
	for _, r := range rows {
		// Materialized layer prepends kid: tag is the last column.
		if r[len(r)-5].S == "artifact" { // tag before the 4 bbox cols
			tagged++
		}
	}
	fmt.Printf("viewport over the artifact interval sees %d tagged samples\n", tagged)

	// ---- render both views ----
	registerRenderers(inst.Client, channels)
	registerRenderers(spectralClient, channels)
	img, err := inst.Client.Render(900, 400)
	if err != nil {
		log.Fatal(err)
	}
	must(img.SavePNG("eeg_temporal.png"))
	fmt.Println("wrote eeg_temporal.png")
	img, err = spectralClient.Render(900, 400)
	if err != nil {
		log.Fatal(err)
	}
	must(img.SavePNG("eeg_spectral.png"))
	fmt.Println("wrote eeg_spectral.png")
}

func registerRenderers(c *kyrix.Client, channels int) {
	c.RegisterRenderer("temporalRendering", func(img *kyrix.Image, _ *kyrix.LayerMeta, row kyrix.Row, box kyrix.Rect) {
		ch := int(row[2].AsInt()) // kid shifts columns by one
		img.Dot(box.Center(), 1.5, channelColor(ch))
	})
	c.RegisterRenderer("spectralRendering", func(img *kyrix.Image, _ *kyrix.LayerMeta, row kyrix.Row, box kyrix.Rect) {
		ch := int(row[2].AsInt())
		img.Dot(box.Center(), 1.5, channelColor(ch))
	})
}

func channelColor(ch int) color.RGBA {
	palette := []color.RGBA{
		{31, 119, 180, 255}, {255, 127, 14, 255},
		{44, 160, 44, 255}, {214, 39, 40, 255},
	}
	return palette[((ch%len(palette))+len(palette))%len(palette)]
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
