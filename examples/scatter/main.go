// scatter demonstrates the paper's performance machinery on a large
// skewed scatterplot: dynamic-box fetching (§3.1), density-adaptive
// boxes ("dynamic boxes can adjust their sizes and locations based on
// data sparsity"), and momentum-based prefetching in the dynamic-box
// context (the §4 study).
//
// It pans a constant-velocity trace twice — without and with the
// momentum prefetcher — and prints per-step response times and the
// prefetch hit rate; then it compares exact/inflated/adaptive boxes
// crossing from the sparse region into the dense one; finally it zooms
// out with and without the layer's "lod": "auto" aggregation pyramid
// and prints the fetched row counts — bounded at any zoom with LOD on,
// proportional to the visible area without (see README.md).
//
// Run with:
//
//	go run ./examples/scatter
package main

import (
	"fmt"
	"log"

	"kyrix"
	"kyrix/internal/workload"
)

func main() {
	const (
		canvasW, canvasH = 65536.0, 8192.0
		n                = 500_000
	)
	d := workload.Skewed(n, canvasW, canvasH, 7)

	db := kyrix.NewDB()
	if _, err := db.Exec("CREATE TABLE pts (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		log.Fatal(err)
	}
	for i := range d.Points {
		p := &d.Points[i]
		err := db.InsertRow("pts", kyrix.Row{
			kyrix.Int(p.ID), kyrix.Float(p.X), kyrix.Float(p.Y), kyrix.Float(p.Val),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d skewed points (80%% inside %s)\n", n, d.DenseRect)

	reg := kyrix.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &kyrix.App{
		Name: "scatter",
		Canvases: []kyrix.Canvas{{
			ID: "main", W: canvasW, H: canvasH,
			Transforms: []kyrix.Transform{{
				ID: "t", Query: "SELECT * FROM pts",
				Columns: []kyrix.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
				},
			}},
			Layers: []kyrix.Layer{{
				TransformID: "t",
				Placement:   &kyrix.Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:    "dots",
				// Build the aggregation pyramid: zoomed-out viewports
				// are served from per-level aggregate cells instead of
				// every raw point they cover.
				LOD: "auto",
			}},
		}},
		InitialCanvas: "main", InitialX: canvasW / 2, InitialY: canvasH / 2,
		ViewportW: 1024, ViewportH: 1024,
	}

	// Skip tile precomputation: this example is dbox-only, so only the
	// spatial index is needed (separable fast path).
	srvOpts := kyrix.DefaultServerOptions()
	srvOpts.Precompute.TileSizes = nil

	inst, err := kyrix.Launch(db, app, reg, srvOpts, kyrix.DefaultClientOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	// ---- momentum prefetching on a constant-velocity pan ----
	trace := workload.ConstantVelocityTrace(
		kyrix.Point{X: canvasW / 2, Y: canvasH / 2}, 1024, 0, 15, 1024, 1024)

	runTrace := func(label string, withPrefetch bool) {
		ca, err := kyrix.Compile(app, reg)
		if err != nil {
			log.Fatal(err)
		}
		c, err := kyrix.NewClient(inst.BaseURL, ca, kyrix.DefaultClientOptions())
		if err != nil {
			log.Fatal(err)
		}
		var pf *kyrix.Prefetcher
		if withPrefetch {
			pf = kyrix.NewPrefetcher(kyrix.NewMomentumPredictor(3), c, []int{0}, d.Canvas())
		}
		if _, err := c.Pan(trace.Steps[0]); err != nil {
			log.Fatal(err)
		}
		if pf != nil {
			pf.OnPan(c.Viewport())
		}
		var totalMs float64
		hits := 0
		for _, step := range trace.Steps[1:] {
			rep, err := c.Pan(step)
			if err != nil {
				log.Fatal(err)
			}
			totalMs += float64(rep.Duration.Microseconds()) / 1000
			if rep.Requests == 0 {
				hits++
			}
			if pf != nil {
				pf.OnPan(c.Viewport())
			}
		}
		steps := trace.NumPans()
		fmt.Printf("%-22s mean %6.2f ms/step, prefetch hits %2d/%d\n",
			label, totalMs/float64(steps), hits, steps)
	}
	fmt.Println("\nmomentum prefetching (constant-velocity pan):")
	runTrace("without prefetch:", false)
	runTrace("with momentum:", true)

	// ---- adaptive boxes across the density boundary ----
	fmt.Println("\nadaptive dynamic boxes crossing sparse -> dense:")
	schemes := []kyrix.Granularity{
		kyrix.DBoxExact,
		kyrix.DBox50,
		{Kind: "dbox", Design: "spatial", Inflate: 1.0, Adaptive: true,
			RowBudget: 4000},
	}
	// Start in the sparse half, pan left into the dense rect.
	start := kyrix.Point{X: d.DenseRect.MaxX + 4096, Y: canvasH / 4}
	cross := workload.ConstantVelocityTrace(start, -1024, 0, 10, 1024, 1024)
	for _, g := range schemes {
		ca, _ := kyrix.Compile(app, reg)
		opts := kyrix.DefaultClientOptions()
		opts.Scheme = g
		c, err := kyrix.NewClient(inst.BaseURL, ca, opts)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.Pan(cross.Steps[0]); err != nil {
			log.Fatal(err)
		}
		var rows, reqs int
		var totalMs float64
		for _, step := range cross.Steps[1:] {
			rep, err := c.Pan(step)
			if err != nil {
				log.Fatal(err)
			}
			rows += rep.Rows
			reqs += rep.Requests
			totalMs += float64(rep.Duration.Microseconds()) / 1000
		}
		fmt.Printf("%-16s %5d rows, %2d requests, mean %6.2f ms/step\n",
			g.Name(), rows, reqs, totalMs/float64(cross.NumPans()))
	}

	// ---- auto-LOD: bounded rows at any zoom ----
	// The same data served through a second app WITHOUT "lod": "auto"
	// (separable layers share the base table, so nothing is copied);
	// zooming out then fetches every raw point the viewport covers,
	// while the pyramid app reads one aggregate level.
	rawApp := *app
	rawApp.Name = "scatterraw"
	rawApp.Canvases = append([]kyrix.Canvas(nil), app.Canvases...)
	rawApp.Canvases[0].Layers = append([]kyrix.Layer(nil), app.Canvases[0].Layers...)
	rawApp.Canvases[0].Layers[0].LOD = ""
	rawInst, err := kyrix.Launch(db, &rawApp, reg, srvOpts, kyrix.DefaultClientOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer rawInst.Close()

	fmt.Println("\nzoom-out row counts, raw vs auto-LOD pyramid:")
	zoomRows := func(inst *kyrix.Instance, appSpec *kyrix.App, window kyrix.Rect) int {
		ca, _ := kyrix.Compile(appSpec, reg)
		opts := kyrix.DefaultClientOptions()
		opts.Scheme = kyrix.DBoxExact
		opts.CacheBytes = 0 // measure the fetch, not the cache
		c, err := kyrix.NewClient(inst.BaseURL, ca, opts)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := c.Pan(window)
		if err != nil {
			log.Fatal(err)
		}
		return rep.Rows
	}
	for _, zoom := range []struct {
		label string
		w, h  float64
	}{
		{"viewport (1x)", 1024, 1024},
		{"zoom-out  8x", 8192, 8192},
		{"full canvas", canvasW, canvasH},
	} {
		win := kyrix.Rect{
			MinX: canvasW/2 - zoom.w/2, MinY: canvasH/2 - zoom.h/2,
			MaxX: canvasW/2 + zoom.w/2, MaxY: canvasH/2 + zoom.h/2,
		}
		if zoom.h > canvasH {
			win.MinY, win.MaxY = 0, canvasH
		}
		raw := zoomRows(rawInst, &rawApp, win)
		lod := zoomRows(inst, app, win)
		fmt.Printf("%-14s raw %7d rows   lod %5d rows\n", zoom.label, raw, lod)
	}
}
