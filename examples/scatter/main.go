// scatter demonstrates the paper's performance machinery on a large
// skewed scatterplot: dynamic-box fetching (§3.1), density-adaptive
// boxes ("dynamic boxes can adjust their sizes and locations based on
// data sparsity"), and momentum-based prefetching in the dynamic-box
// context (the §4 study).
//
// It pans a constant-velocity trace twice — without and with the
// momentum prefetcher — and prints per-step response times and the
// prefetch hit rate; then it compares exact/inflated/adaptive boxes
// crossing from the sparse region into the dense one.
//
// Run with:
//
//	go run ./examples/scatter
package main

import (
	"fmt"
	"log"

	"kyrix"
	"kyrix/internal/workload"
)

func main() {
	const (
		canvasW, canvasH = 65536.0, 8192.0
		n                = 500_000
	)
	d := workload.Skewed(n, canvasW, canvasH, 7)

	db := kyrix.NewDB()
	if _, err := db.Exec("CREATE TABLE pts (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		log.Fatal(err)
	}
	for i := range d.Points {
		p := &d.Points[i]
		err := db.InsertRow("pts", kyrix.Row{
			kyrix.Int(p.ID), kyrix.Float(p.X), kyrix.Float(p.Y), kyrix.Float(p.Val),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d skewed points (80%% inside %s)\n", n, d.DenseRect)

	reg := kyrix.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &kyrix.App{
		Name: "scatter",
		Canvases: []kyrix.Canvas{{
			ID: "main", W: canvasW, H: canvasH,
			Transforms: []kyrix.Transform{{
				ID: "t", Query: "SELECT * FROM pts",
				Columns: []kyrix.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
				},
			}},
			Layers: []kyrix.Layer{{
				TransformID: "t",
				Placement:   &kyrix.Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:    "dots",
			}},
		}},
		InitialCanvas: "main", InitialX: canvasW / 2, InitialY: canvasH / 2,
		ViewportW: 1024, ViewportH: 1024,
	}

	// Skip tile precomputation: this example is dbox-only, so only the
	// spatial index is needed (separable fast path).
	srvOpts := kyrix.DefaultServerOptions()
	srvOpts.Precompute.TileSizes = nil

	inst, err := kyrix.Launch(db, app, reg, srvOpts, kyrix.DefaultClientOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	// ---- momentum prefetching on a constant-velocity pan ----
	trace := workload.ConstantVelocityTrace(
		kyrix.Point{X: canvasW / 2, Y: canvasH / 2}, 1024, 0, 15, 1024, 1024)

	runTrace := func(label string, withPrefetch bool) {
		ca, err := kyrix.Compile(app, reg)
		if err != nil {
			log.Fatal(err)
		}
		c, err := kyrix.NewClient(inst.BaseURL, ca, kyrix.DefaultClientOptions())
		if err != nil {
			log.Fatal(err)
		}
		var pf *kyrix.Prefetcher
		if withPrefetch {
			pf = kyrix.NewPrefetcher(kyrix.NewMomentumPredictor(3), c, []int{0}, d.Canvas())
		}
		if _, err := c.Pan(trace.Steps[0]); err != nil {
			log.Fatal(err)
		}
		if pf != nil {
			pf.OnPan(c.Viewport())
		}
		var totalMs float64
		hits := 0
		for _, step := range trace.Steps[1:] {
			rep, err := c.Pan(step)
			if err != nil {
				log.Fatal(err)
			}
			totalMs += float64(rep.Duration.Microseconds()) / 1000
			if rep.Requests == 0 {
				hits++
			}
			if pf != nil {
				pf.OnPan(c.Viewport())
			}
		}
		steps := trace.NumPans()
		fmt.Printf("%-22s mean %6.2f ms/step, prefetch hits %2d/%d\n",
			label, totalMs/float64(steps), hits, steps)
	}
	fmt.Println("\nmomentum prefetching (constant-velocity pan):")
	runTrace("without prefetch:", false)
	runTrace("with momentum:", true)

	// ---- adaptive boxes across the density boundary ----
	fmt.Println("\nadaptive dynamic boxes crossing sparse -> dense:")
	schemes := []kyrix.Granularity{
		kyrix.DBoxExact,
		kyrix.DBox50,
		{Kind: "dbox", Design: "spatial", Inflate: 1.0, Adaptive: true,
			RowBudget: 4000},
	}
	// Start in the sparse half, pan left into the dense rect.
	start := kyrix.Point{X: d.DenseRect.MaxX + 4096, Y: canvasH / 4}
	cross := workload.ConstantVelocityTrace(start, -1024, 0, 10, 1024, 1024)
	for _, g := range schemes {
		ca, _ := kyrix.Compile(app, reg)
		opts := kyrix.DefaultClientOptions()
		opts.Scheme = g
		c, err := kyrix.NewClient(inst.BaseURL, ca, opts)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.Pan(cross.Steps[0]); err != nil {
			log.Fatal(err)
		}
		var rows, reqs int
		var totalMs float64
		for _, step := range cross.Steps[1:] {
			rep, err := c.Pan(step)
			if err != nil {
				log.Fatal(err)
			}
			rows += rep.Rows
			reqs += rep.Requests
			totalMs += float64(rep.Duration.Microseconds()) / 1000
		}
		fmt.Printf("%-16s %5d rows, %2d requests, mean %6.2f ms/step\n",
			g.Name(), rows, reqs, totalMs/float64(cross.NumPans()))
	}
}
