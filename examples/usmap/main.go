// usmap reproduces the paper's §2.2 example application: an interactive
// map of US crime rates per state and county (Figures 2 and 3).
//
// Two canvases: the initial state-level crime-rate map (with a static
// legend layer overlaid on a pannable state layer) and a 5x larger,
// pannable county-level map. Clicking a state triggers a
// geometric+semantic zoom jump into the county map centered on that
// state — the Go translation of the paper's Fig. 3 JavaScript snippet,
// including the selector, newViewport and jumpName functions.
//
// Run with:
//
//	go run ./examples/usmap
//
// Outputs: usmap_states.png (Fig. 2a), usmap_counties.png (Fig. 2c),
// usmap_counties_panned.png (Fig. 2d).
package main

import (
	"fmt"
	"image/color"
	"log"

	"kyrix"
	"kyrix/internal/workload"
)

func main() {
	cd := workload.Crime(60, 2019)

	// ---- load the two-level crime data into the DBMS ----
	db := kyrix.NewDB()
	mustExec(db, `CREATE TABLE states (id INT, name TEXT, rate DOUBLE, pop INT, cx DOUBLE, cy DOUBLE)`)
	for _, s := range cd.States {
		c := s.Box.Center()
		mustInsert(db, "states", kyrix.Row{
			kyrix.Int(s.ID), kyrix.Text(s.Name), kyrix.Float(s.CrimeRate),
			kyrix.Int(s.Pop), kyrix.Float(c.X), kyrix.Float(c.Y),
		})
	}
	mustExec(db, `CREATE TABLE counties (id INT, name TEXT, rate DOUBLE, parent INT,
		minx DOUBLE, miny DOUBLE, maxx DOUBLE, maxy DOUBLE)`)
	for _, c := range cd.Counties {
		mustInsert(db, "counties", kyrix.Row{
			kyrix.Int(c.ID), kyrix.Text(c.Name), kyrix.Float(c.CrimeRate), kyrix.Int(c.ParentID),
			kyrix.Float(c.Box.MinX), kyrix.Float(c.Box.MinY),
			kyrix.Float(c.Box.MaxX), kyrix.Float(c.Box.MaxY),
		})
	}

	// ---- the Fig. 3 spec, in Go ----
	reg := kyrix.NewRegistry()
	reg.RegisterRenderer("stateMapLegendRendering")
	reg.RegisterRenderer("stateMapRendering")
	reg.RegisterRenderer("countyMapRendering")
	// var selector = function (row, layerId) { return layerId == 1; }
	reg.RegisterSelector("stateSelector", func(row kyrix.Row, layerIdx int) bool {
		return layerIdx == 1
	})
	// var newViewport = function (row) { ... } — center the county map
	// on the clicked state (county canvas is 5x the state canvas).
	reg.RegisterViewport("countyViewport", func(row kyrix.Row) kyrix.Point {
		return kyrix.Point{X: row[4].AsFloat() * 5, Y: row[5].AsFloat() * 5}
	})
	// var jumpName = function (row) { return "County map of " + row[3]; }
	reg.RegisterName("countyName", func(row kyrix.Row) string {
		return "County map of " + row[1].S
	})
	// Non-separable placement for counties: the bbox spans four
	// columns, so the backend materializes this layer (§3.2).
	reg.RegisterPlacement("countyPlacement", func(row kyrix.Row) kyrix.Rect {
		return kyrix.Rect{
			MinX: row[4].AsFloat(), MinY: row[5].AsFloat(),
			MaxX: row[6].AsFloat(), MaxY: row[7].AsFloat(),
		}
	})

	app := &kyrix.App{
		Name: "usmap", DBConfig: "config.txt",
		Canvases: []kyrix.Canvas{
			{
				ID: "statemap", W: cd.StateCanvas.W(), H: cd.StateCanvas.H(),
				Transforms: []kyrix.Transform{
					{ID: "empty"},
					{ID: "stateMapTrans", Query: "SELECT * FROM states",
						Columns: []kyrix.ColumnSpec{
							{Name: "id", Type: "int"}, {Name: "name", Type: "text"},
							{Name: "rate", Type: "double"}, {Name: "pop", Type: "int"},
							{Name: "cx", Type: "double"}, {Name: "cy", Type: "double"},
						}},
				},
				Layers: []kyrix.Layer{
					// Static legend layer: stays put when the user pans.
					{TransformID: "empty", Static: true, Renderer: "stateMapLegendRendering"},
					// Pannable state border layer (separable: states
					// are 100x100 squares centered at cx, cy).
					{TransformID: "stateMapTrans", Static: false,
						Placement: &kyrix.Placement{XCol: "cx", YCol: "cy", Radius: 50},
						Renderer:  "stateMapRendering"},
				},
			},
			{
				ID: "countymap", W: cd.CountyCanvas.W(), H: cd.CountyCanvas.H(),
				Transforms: []kyrix.Transform{
					{ID: "countyMapTrans", Query: "SELECT * FROM counties",
						Columns: []kyrix.ColumnSpec{
							{Name: "id", Type: "int"}, {Name: "name", Type: "text"},
							{Name: "rate", Type: "double"}, {Name: "parent", Type: "int"},
							{Name: "minx", Type: "double"}, {Name: "miny", Type: "double"},
							{Name: "maxx", Type: "double"}, {Name: "maxy", Type: "double"},
						}},
				},
				Layers: []kyrix.Layer{
					{TransformID: "countyMapTrans",
						Placement: &kyrix.Placement{Func: "countyPlacement"},
						Renderer:  "countyMapRendering"},
				},
			},
		},
		Jumps: []kyrix.Jump{{
			From: "statemap", To: "countymap", Type: kyrix.GeometricSemanticZoom,
			Selector: "stateSelector", NewViewport: "countyViewport", Name: "countyName",
		}},
		InitialCanvas: "statemap", InitialX: 500, InitialY: 250,
		ViewportW: 600, ViewportH: 400,
	}

	inst, err := kyrix.Launch(db, app, reg, kyrix.DefaultServerOptions(), kyrix.DefaultClientOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	registerRenderers(inst.Client)

	// ---- Fig. 2a: the state-level map ----
	rep, err := inst.Client.Load()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state map loaded: %d rows, %v\n", rep.Rows, rep.Duration)
	savePNG(inst.Client, "usmap_states.png")

	// ---- Fig. 2b/2c: click Massachusetts, jump to the county map ----
	states, err := inst.Client.ObjectsInViewport(1)
	if err != nil {
		log.Fatal(err)
	}
	var massachusetts kyrix.Row
	for _, r := range states {
		if r[1].S == "Massachusetts" {
			massachusetts = r
			break
		}
	}
	if massachusetts == nil {
		// Not in the initial viewport: pan until found.
		_, _ = inst.Client.Pan(kyrix.RectXYWH(0, 200, 600, 400))
		states, _ = inst.Client.ObjectsInViewport(1)
		for _, r := range states {
			if r[1].S == "Massachusetts" {
				massachusetts = r
				break
			}
		}
	}
	if massachusetts == nil {
		log.Fatal("Massachusetts not found on the state map")
	}
	choices, err := inst.Client.JumpsFor(massachusetts, 1)
	if err != nil || len(choices) == 0 {
		log.Fatalf("no jumps for the clicked state: %v", err)
	}
	fmt.Printf("clicked state %q -> jump available: %q\n", massachusetts[1].S, choices[0].Label)
	rep, err = inst.Client.Jump(choices[0].Index, massachusetts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("county map loaded (canvas %s): %d rows, %v\n",
		inst.Client.Canvas().ID, rep.Rows, rep.Duration)
	savePNG(inst.Client, "usmap_counties.png")

	// ---- Fig. 2d: pan on the county-level map ----
	rep, err = inst.Client.PanBy(300, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("county pan: %d requests, %d rows, %v\n", rep.Requests, rep.Rows, rep.Duration)
	savePNG(inst.Client, "usmap_counties_panned.png")
}

// registerRenderers installs the three rendering functions of Fig. 3.
func registerRenderers(c *kyrix.Client) {
	const rateLo, rateHi = 100.0, 1200.0
	ramp := func(rate float64) color.RGBA {
		t := (rate - rateLo) / (rateHi - rateLo)
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return color.RGBA{R: 255, G: uint8(235 * (1 - t)), B: uint8(225 * (1 - t)), A: 255}
	}
	border := color.RGBA{R: 60, G: 60, B: 60, A: 255}

	// Static legend in the upper right-hand corner of the viewport.
	c.RegisterRenderer("stateMapLegendRendering", func(img *kyrix.Image, _ *kyrix.LayerMeta, _ kyrix.Row, _ kyrix.Rect) {
		view := img.View()
		x := view.MaxX - view.W()*0.18
		y := view.MinY + view.H()*0.05
		sw := view.W() * 0.03
		for i := 0; i < 5; i++ {
			rate := rateLo + float64(i)/4*(rateHi-rateLo)
			img.FillRect(kyrix.RectXYWH(x+float64(i)*sw, y, sw, sw), ramp(rate))
		}
		img.StrokeRect(kyrix.RectXYWH(x, y, 5*sw, sw), border)
	})
	c.RegisterRenderer("stateMapRendering", func(img *kyrix.Image, _ *kyrix.LayerMeta, row kyrix.Row, box kyrix.Rect) {
		img.FillRect(box, ramp(row[2].AsFloat()))
		img.StrokeRect(box, border)
	})
	c.RegisterRenderer("countyMapRendering", func(img *kyrix.Image, meta *kyrix.LayerMeta, row kyrix.Row, box kyrix.Rect) {
		// Materialized layers prepend a kid column: rate is at 3.
		img.FillRect(box, ramp(row[3].AsFloat()))
		img.StrokeRect(box, border)
	})
}

func savePNG(c *kyrix.Client, path string) {
	img, err := c.Render(900, 600)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.SavePNG(path); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}

func mustExec(db *kyrix.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatal(err)
	}
}

func mustInsert(db *kyrix.DB, table string, row kyrix.Row) {
	if err := db.InsertRow(table, row); err != nil {
		log.Fatal(err)
	}
}
