// Quickstart: the smallest end-to-end Kyrix application.
//
// It loads a synthetic scatterplot into the embedded DBMS, declares a
// one-canvas app with a separable placement, launches backend +
// frontend in-process, pans around with dynamic-box fetching, and
// renders the final viewport to quickstart.png.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"image/color"
	"log"
	"math/rand"

	"kyrix"
)

func main() {
	// 1. Load data into the embedded DBMS (stand-in for PostgreSQL).
	db := kyrix.NewDB()
	if _, err := db.Exec("CREATE TABLE stars (id INT, x DOUBLE, y DOUBLE, mag DOUBLE)"); err != nil {
		log.Fatal(err)
	}
	const canvasW, canvasH = 16384.0, 16384.0
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200_000; i++ {
		err := db.InsertRow("stars", kyrix.Row{
			kyrix.Int(int64(i)),
			kyrix.Float(rng.Float64() * canvasW),
			kyrix.Float(rng.Float64() * canvasH),
			kyrix.Float(rng.Float64()*5 + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// 2. Declare the app: one canvas, one layer, separable placement
	//    (x and y are raw attributes, so Kyrix skips precomputation
	//    and queries the spatial index directly — §3.2).
	reg := kyrix.NewRegistry()
	reg.RegisterRenderer("starDots")
	app := &kyrix.App{
		Name: "quickstart",
		Canvases: []kyrix.Canvas{{
			ID: "sky", W: canvasW, H: canvasH,
			Transforms: []kyrix.Transform{{
				ID: "starsT", Query: "SELECT * FROM stars",
				Columns: []kyrix.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "mag", Type: "double"},
				},
			}},
			Layers: []kyrix.Layer{{
				TransformID: "starsT",
				Placement:   &kyrix.Placement{XCol: "x", YCol: "y", Radius: 2},
				Renderer:    "starDots",
			}},
		}},
		InitialCanvas: "sky", InitialX: canvasW / 2, InitialY: canvasH / 2,
		ViewportW: 1024, ViewportH: 1024,
	}

	// 3. Launch backend + frontend in-process.
	inst, err := kyrix.Launch(db, app, reg,
		kyrix.DefaultServerOptions(), kyrix.DefaultClientOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()
	fmt.Printf("backend at %s\n", inst.BaseURL)

	// 4. Interact: initial load, then a few pans.
	rep, err := inst.Client.Load()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial load: %d rows in %v (budget 500ms: ok=%v)\n",
		rep.Rows, rep.Duration, kyrix.WithinBudget(rep))
	for i := 0; i < 5; i++ {
		rep, err = inst.Client.PanBy(700, 150)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pan %d: %d requests, %d rows, %v\n",
			i+1, rep.Requests, rep.Rows, rep.Duration)
	}

	// 5. Render the final viewport.
	inst.Client.RegisterRenderer("starDots", func(img *kyrix.Image, _ *kyrix.LayerMeta, row kyrix.Row, box kyrix.Rect) {
		// Brighter stars (lower magnitude) draw larger.
		r := 4 - row[3].AsFloat()/2
		if r < 1 {
			r = 1
		}
		img.Dot(box.Center(), r, color.RGBA{R: 30, G: 60, B: 180, A: 255})
	})
	img, err := inst.Client.Render(512, 512)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.SavePNG("quickstart.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.png")
}
